#include "wal/disk_log.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace brahma {

namespace {

constexpr char kMagic[8] = {'B', 'R', 'W', 'A', 'L', 'S', 'E', 'G'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kSegHeaderSize = 40;
constexpr uint64_t kFrameHeaderSize = 9;  // u32 len | u8 kind | u32 crc
constexpr uint8_t kFrameKind = 0xC7;
constexpr uint32_t kMaxFrameBytes = 1u << 30;  // sanity cap for the scan
constexpr size_t kRecyclePoolCap = 4;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// Bounds-checked cursor for decoding; any overrun poisons `ok`.
struct Reader {
  const uint8_t* p;
  size_t n;
  size_t off = 0;
  bool ok = true;

  uint8_t U8() {
    if (off + 1 > n) { ok = false; return 0; }
    return p[off++];
  }
  uint32_t U32() {
    if (off + 4 > n) { ok = false; return 0; }
    uint32_t v = LoadU32(p + off);
    off += 4;
    return v;
  }
  uint64_t U64() {
    if (off + 8 > n) { ok = false; return 0; }
    uint64_t v = LoadU64(p + off);
    off += 8;
    return v;
  }
  bool Bytes(std::vector<uint8_t>* out, size_t len) {
    if (off + len > n) { ok = false; return false; }
    out->assign(p + off, p + off + len);
    off += len;
    return true;
  }
};

// 40-byte segment header: magic | version | incarnation | seqno |
// base_lsn | CRC over the preceding 32 bytes | zero pad.
void BuildSegmentHeader(uint32_t incarnation, uint64_t seqno, Lsn base_lsn,
                        std::vector<uint8_t>* out) {
  out->clear();
  out->insert(out->end(), kMagic, kMagic + 8);
  PutU32(out, kFormatVersion);
  PutU32(out, incarnation);
  PutU64(out, seqno);
  PutU64(out, base_lsn);
  PutU32(out, Crc32c(out->data(), 32));
  PutU32(out, 0);  // pad
}

struct SegmentHeader {
  uint32_t incarnation = 0;
  uint64_t seqno = 0;
  Lsn base_lsn = kInvalidLsn;
};

bool ParseSegmentHeader(const uint8_t* p, size_t n, SegmentHeader* out) {
  if (n < kSegHeaderSize) return false;
  if (std::memcmp(p, kMagic, 8) != 0) return false;
  if (LoadU32(p + 8) != kFormatVersion) return false;
  if (LoadU32(p + 32) != Crc32c(p, 32)) return false;
  out->incarnation = LoadU32(p + 12);
  out->seqno = LoadU64(p + 16);
  out->base_lsn = LoadU64(p + 24);
  return true;
}

// [u32 payload len | u8 kind | u32 crc | payload]; the CRC covers the
// len bytes, the kind byte, and the payload — everything but itself.
void BuildFrame(const std::vector<uint8_t>& payload, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(kFrameHeaderSize + payload.size());
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU8(out, kFrameKind);
  uint32_t crc = Crc32c(out->data(), 5);
  crc = Crc32c(payload.data(), payload.size(), crc);
  PutU32(out, crc);
  out->insert(out->end(), payload.begin(), payload.end());
}

}  // namespace

void EncodeLogRecord(const LogRecord& rec, std::vector<uint8_t>* out) {
  out->clear();
  PutU64(out, rec.lsn);
  PutU64(out, rec.prev_lsn);
  PutU64(out, rec.txn);
  PutU8(out, static_cast<uint8_t>(rec.type));
  PutU8(out, static_cast<uint8_t>(rec.source));
  PutU8(out, static_cast<uint8_t>(rec.compensates));
  PutU64(out, rec.oid.raw());
  PutU64(out, rec.old_ref.raw());
  PutU64(out, rec.new_ref.raw());
  PutU64(out, rec.reorg_old.raw());
  PutU32(out, rec.slot);
  PutU32(out, rec.num_refs);
  PutU32(out, rec.data_size);
  PutU64(out, rec.undo_next_lsn);
  PutU64(out, rec.checkpoint_lsn);
  PutU32(out, static_cast<uint32_t>(rec.old_data.size()));
  out->insert(out->end(), rec.old_data.begin(), rec.old_data.end());
  PutU32(out, static_cast<uint32_t>(rec.new_data.size()));
  out->insert(out->end(), rec.new_data.begin(), rec.new_data.end());
  PutU32(out, static_cast<uint32_t>(rec.refs_image.size()));
  for (ObjectId ref : rec.refs_image) PutU64(out, ref.raw());
}

bool DecodeLogRecord(const uint8_t* data, size_t n, LogRecord* out) {
  Reader r{data, n};
  out->lsn = r.U64();
  out->prev_lsn = r.U64();
  out->txn = r.U64();
  uint8_t type = r.U8();
  uint8_t source = r.U8();
  uint8_t compensates = r.U8();
  out->oid = ObjectId::FromRaw(r.U64());
  out->old_ref = ObjectId::FromRaw(r.U64());
  out->new_ref = ObjectId::FromRaw(r.U64());
  out->reorg_old = ObjectId::FromRaw(r.U64());
  out->slot = r.U32();
  out->num_refs = r.U32();
  out->data_size = r.U32();
  out->undo_next_lsn = r.U64();
  out->checkpoint_lsn = r.U64();
  uint32_t old_len = r.U32();
  if (!r.ok || !r.Bytes(&out->old_data, old_len)) return false;
  uint32_t new_len = r.U32();
  if (!r.ok || !r.Bytes(&out->new_data, new_len)) return false;
  uint32_t refs = r.U32();
  if (!r.ok || r.off + static_cast<size_t>(refs) * 8 > r.n) return false;
  out->refs_image.clear();
  out->refs_image.reserve(refs);
  for (uint32_t i = 0; i < refs; ++i) {
    out->refs_image.push_back(ObjectId::FromRaw(r.U64()));
  }
  if (!r.ok || r.off != r.n) return false;
  // Enum-range checks: the CRC already caught random damage, but a
  // validly-framed record from a future format must not be misread.
  if (type > static_cast<uint8_t>(LogRecordType::kCheckpoint)) return false;
  if (source > static_cast<uint8_t>(LogSource::kReorg)) return false;
  if (compensates > static_cast<uint8_t>(LogRecordType::kCheckpoint)) {
    return false;
  }
  out->type = static_cast<LogRecordType>(type);
  out->source = static_cast<LogSource>(source);
  out->compensates = static_cast<LogRecordType>(compensates);
  return true;
}

std::string DiskLog::SegmentPath(uint64_t seqno) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.seg",
                static_cast<unsigned long long>(seqno));
  return opts_.dir + "/" + buf;
}

Status DiskLog::Open() {
  std::lock_guard<std::mutex> io_lock(io_mu_);
  Status s = MakeDirs(opts_.dir);
  if (!s.ok()) return s;
  std::vector<std::string> names;
  s = ListDir(opts_.dir, &names);
  if (!s.ok() && !s.IsNotFound()) return s;
  uint64_t max_seqno = 0;
  for (const std::string& name : names) {
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.compare(name.size() - 4, 4, ".seg") == 0) {
      uint64_t seqno = std::strtoull(name.c_str() + 4, nullptr, 10);
      max_seqno = std::max(max_seqno, seqno);
    }
  }
  next_seqno_ = max_seqno + 1;
  ++incarnation_;
  return Status::Ok();
}

void DiskLog::Buffer(const LogRecord& rec) {
  PendingFrame frame;
  frame.lsn = rec.lsn;
  std::vector<uint8_t> payload;
  EncodeLogRecord(rec, &payload);
  BuildFrame(payload, &frame.bytes);
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(frame));
}

Status DiskLog::OpenFreshSegmentLocked(Lsn base_lsn) {
  uint64_t seqno = next_seqno_++;
  std::string path = SegmentPath(seqno);
  if (!recycle_.empty()) {
    // Reuse a truncated-away segment's blocks; fall through to a plain
    // create if the rename fails.
    std::string old = recycle_.back();
    recycle_.pop_back();
    if (!AtomicRename(old, path, "media:wal", FsyncMode::kNoop).ok()) {
      RemoveFile(old);
    }
  }
  Status s = FileHandle::Open(path, /*create=*/true, /*truncate=*/true,
                              "media:wal", &cur_);
  if (!s.ok()) return s;
  std::vector<uint8_t> header;
  BuildSegmentHeader(incarnation_, seqno, base_lsn, &header);
  s = cur_.WriteAt(0, header.data(), header.size(), nullptr);
  if (!s.ok()) {
    // A torn header would read as a corrupt segment mid-log once later
    // segments exist; remove the carcass so retry starts clean.
    cur_.Close();
    RemoveFile(path);
    return s;
  }
  // Make the directory entry durable before any frame in the segment is
  // acknowledged.
  Status ds = SyncDir(opts_.dir, opts_.fsync_mode);
  if (!ds.ok()) {
    cur_.Close();
    RemoveFile(path);
    return ds;
  }
  cur_off_ = kSegHeaderSize;
  cur_dirty_ = true;
  segments_.push_back(Segment{seqno, base_lsn, base_lsn});
  return Status::Ok();
}

Status DiskLog::SyncCurrentLocked() {
  if (!cur_.is_open() || !cur_dirty_) return Status::Ok();
  Status s = cur_.Sync(opts_.fsync_mode);
  if (s.ok()) {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    cur_dirty_ = false;
  }
  return s;
}

Status DiskLog::Force() {
  std::deque<PendingFrame> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(pending_);
  }
  std::lock_guard<std::mutex> io_lock(io_mu_);
  auto requeue_from = [&](size_t idx) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = batch.size(); i > idx; --i) {
      pending_.push_front(std::move(batch[i - 1]));
    }
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingFrame& f = batch[i];
    bool rotate = cur_.is_open() && cur_off_ > kSegHeaderSize &&
                  cur_off_ + f.bytes.size() > opts_.segment_bytes;
    if (rotate) {
      // Seal the old segment: its frames must be on the platter before
      // we stop syncing it.
      Status s = SyncCurrentLocked();
      if (!s.ok()) {
        requeue_from(i);
        return s;
      }
      cur_.Close();
    }
    if (!cur_.is_open()) {
      Status s = OpenFreshSegmentLocked(f.lsn);
      if (!s.ok()) {
        requeue_from(i);
        return s;
      }
    }
    size_t written = 0;
    Status s = cur_.WriteAt(cur_off_, f.bytes.data(), f.bytes.size(), &written);
    if (!s.ok()) {
      // Torn write: `written` bytes of garbage sit past cur_off_. The
      // offset does not advance, so a retry rewrites the frame in place
      // and a crash leaves a torn tail for the recovery scan.
      cur_dirty_ = cur_dirty_ || written > 0;
      requeue_from(i);
      return s;
    }
    cur_off_ += f.bytes.size();
    cur_dirty_ = true;
    segments_.back().next_lsn = f.lsn + 1;
  }
  return SyncCurrentLocked();
}

void DiskLog::CrashClose() {
  std::lock_guard<std::mutex> io_lock(io_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  cur_.Close();
  cur_off_ = 0;
  cur_dirty_ = false;
  segments_.clear();
  recycle_.clear();
}

Status DiskLog::Recover(Lsn stable_floor, std::vector<LogRecord>* out,
                        ScrubReport* report) {
  std::lock_guard<std::mutex> io_lock(io_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
  }
  cur_.Close();
  cur_off_ = 0;
  cur_dirty_ = false;
  segments_.clear();
  recycle_.clear();
  out->clear();
  ++incarnation_;

  std::vector<std::string> names;
  Status s = ListDir(opts_.dir, &names);
  if (s.IsNotFound()) {
    s = MakeDirs(opts_.dir);
    if (!s.ok()) return s;
    names.clear();
  } else if (!s.ok()) {
    return s;
  }
  std::vector<std::pair<uint64_t, std::string>> files;  // (seqno, path)
  uint64_t max_seqno = 0;
  for (const std::string& name : names) {
    if (name.rfind("recycle-", 0) == 0) {
      // The pool is rebuilt by truncation; stale entries are garbage.
      RemoveFile(opts_.dir + "/" + name);
      continue;
    }
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.compare(name.size() - 4, 4, ".seg") == 0) {
      uint64_t seqno = std::strtoull(name.c_str() + 4, nullptr, 10);
      files.emplace_back(seqno, opts_.dir + "/" + name);
      max_seqno = std::max(max_seqno, seqno);
    }
  }
  std::sort(files.begin(), files.end());
  next_seqno_ = max_seqno + 1;

  Lsn expected = 0;  // 0 = no surviving record yet
  uint64_t tail_trunc_size = ~uint64_t{0};  // truncation point in last seg
  for (size_t i = 0; i < files.size(); ++i) {
    const bool is_last = (i + 1 == files.size());
    std::vector<uint8_t> data;
    // Work with whatever bytes the device yields — a short read shapes
    // the data; the scan itself must not error out on it.
    ReadEntireFile(files[i].second, "media:wal", &data);
    ++report->segments_scanned;
    report->wal_bytes_scanned += data.size();

    SegmentHeader hdr;
    if (!ParseSegmentHeader(data.data(), data.size(), &hdr) ||
        hdr.seqno != files[i].first) {
      if (!is_last) {
        return Status::Corrupted("bad segment header mid-log: " +
                                 files[i].second);
      }
      // Torn segment creation: the header never fully landed. Every
      // frame it would have held is above `expected`.
      Lsn last_good = (expected == 0) ? 0 : expected - 1;
      if (last_good < stable_floor) {
        return Status::Corrupted("torn head segment would lose stable lsns");
      }
      RemoveFile(files[i].second);
      ++report->torn_tails_truncated;
      report->torn_bytes_discarded += data.size();
      break;
    }
    if (expected == 0) {
      // First surviving segment: everything below its base was
      // truncated, which only ever happens under a checkpoint that
      // covers it.
      if (hdr.base_lsn > stable_floor + 1) {
        return Status::Corrupted("log head starts past the stable floor");
      }
    } else if (hdr.base_lsn != expected) {
      return Status::Corrupted("segment gap: expected lsn " +
                               std::to_string(expected) + ", segment starts at " +
                               std::to_string(hdr.base_lsn));
    }
    expected = hdr.base_lsn;

    uint64_t off = kSegHeaderSize;
    bool torn_here = false;
    while (off < data.size()) {
      uint64_t bad_at = off;
      bool good = false;
      LogRecord rec;
      if (data.size() - off >= kFrameHeaderSize) {
        uint32_t len = LoadU32(data.data() + off);
        uint8_t kind = data[off + 4];
        uint32_t crc = LoadU32(data.data() + off + 5);
        if (kind == kFrameKind && len > 0 && len <= kMaxFrameBytes &&
            off + kFrameHeaderSize + len <= data.size()) {
          uint32_t actual = Crc32c(data.data() + off, 5);
          actual = Crc32c(data.data() + off + kFrameHeaderSize, len, actual);
          if (actual == crc &&
              DecodeLogRecord(data.data() + off + kFrameHeaderSize, len,
                              &rec) &&
              rec.lsn == expected) {
            good = true;
            off += kFrameHeaderSize + len;
          }
        }
      }
      if (good) {
        out->push_back(std::move(rec));
        ++expected;
        ++report->wal_records_verified;
        continue;
      }
      // Bad or short frame at bad_at.
      if (!is_last) {
        return Status::Corrupted("bad frame mid-log in " + files[i].second);
      }
      Lsn last_good = expected - 1;
      if (last_good < stable_floor) {
        return Status::Corrupted(
            "torn tail would lose stable lsn " + std::to_string(expected) +
            " (floor " + std::to_string(stable_floor) + ")");
      }
      ++report->torn_tails_truncated;
      report->torn_bytes_discarded += data.size() - bad_at;
      tail_trunc_size = bad_at;
      torn_here = true;
      break;
    }
    segments_.push_back(Segment{hdr.seqno, hdr.base_lsn, expected});
    if (torn_here) break;
  }

  Lsn last_good = (expected == 0) ? 0 : expected - 1;
  if (last_good < stable_floor) {
    return Status::Corrupted("stable lsns missing: log ends at " +
                             std::to_string(last_good) + ", floor " +
                             std::to_string(stable_floor));
  }

  if (!segments_.empty()) {
    const Segment& tail = segments_.back();
    Status os = FileHandle::Open(SegmentPath(tail.seqno), /*create=*/false,
                                 /*truncate=*/false, "media:wal", &cur_);
    if (!os.ok()) return os;
    uint64_t size = 0;
    os = cur_.Size(&size);
    if (!os.ok()) return os;
    if (tail_trunc_size != ~uint64_t{0} && tail_trunc_size < size) {
      os = cur_.Truncate(tail_trunc_size);
      if (!os.ok()) return os;
      size = tail_trunc_size;
      cur_dirty_ = true;  // the shrink itself must reach the platter
    }
    cur_off_ = size;
  }
  return Status::Ok();
}

void DiskLog::TruncateThrough(Lsn upto) {
  std::lock_guard<std::mutex> io_lock(io_mu_);
  while (segments_.size() > 1 && segments_[1].base_lsn <= upto) {
    const Segment& victim = segments_.front();
    std::string path = SegmentPath(victim.seqno);
    if (recycle_.size() < kRecyclePoolCap) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "recycle-%06llu.seg",
                    static_cast<unsigned long long>(victim.seqno));
      std::string rpath = opts_.dir + "/" + buf;
      if (AtomicRename(path, rpath, "media:wal", FsyncMode::kNoop).ok()) {
        recycle_.push_back(rpath);
      } else {
        RemoveFile(path);
      }
    } else {
      RemoveFile(path);
    }
    segments_.erase(segments_.begin());
  }
}

uint64_t DiskLog::fsyncs() const {
  return fsyncs_.load(std::memory_order_relaxed);
}

}  // namespace brahma
