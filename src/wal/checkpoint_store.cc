#include "wal/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace brahma {

namespace {

constexpr char kMagic[8] = {'B', 'R', 'A', 'H', 'M', 'C', 'K', 'P'};
constexpr uint32_t kFormatVersion = 1;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// magic | version | generation | checkpoint lsn | persistent root |
// partition count | per-partition image | CRC32C over everything above.
void Serialize(const CheckpointImage& img, uint64_t generation,
               std::vector<uint8_t>* out) {
  out->clear();
  out->insert(out->end(), kMagic, kMagic + 8);
  PutU32(out, kFormatVersion);
  PutU64(out, generation);
  PutU64(out, img.lsn);
  PutU64(out, img.persistent_root.raw());
  PutU32(out, static_cast<uint32_t>(img.images.size()));
  for (const Partition::Image& p : img.images) {
    PutU64(out, p.high_water);
    PutU32(out, static_cast<uint32_t>(p.free_list.size()));
    for (const auto& [off, size] : p.free_list) {
      PutU64(out, off);
      PutU64(out, size);
    }
    PutU64(out, p.bytes.size());
    out->insert(out->end(), p.bytes.begin(), p.bytes.end());
  }
  PutU32(out, Crc32c(out->data(), out->size()));
}

bool Deserialize(const std::vector<uint8_t>& data, uint64_t expect_generation,
                 CheckpointImage* img) {
  if (data.size() < 8 + 4 + 8 + 8 + 8 + 4 + 4) return false;
  size_t body = data.size() - 4;
  if (LoadU32(data.data() + body) != Crc32c(data.data(), body)) return false;
  if (std::memcmp(data.data(), kMagic, 8) != 0) return false;
  size_t off = 8;
  if (LoadU32(data.data() + off) != kFormatVersion) return false;
  off += 4;
  if (LoadU64(data.data() + off) != expect_generation) return false;
  off += 8;
  img->lsn = LoadU64(data.data() + off);
  off += 8;
  img->persistent_root = ObjectId::FromRaw(LoadU64(data.data() + off));
  off += 8;
  uint32_t num_parts = LoadU32(data.data() + off);
  off += 4;
  img->images.clear();
  img->images.resize(num_parts);
  for (uint32_t i = 0; i < num_parts; ++i) {
    Partition::Image& p = img->images[i];
    if (off + 8 + 4 > body) return false;
    p.high_water = LoadU64(data.data() + off);
    off += 8;
    uint32_t frees = LoadU32(data.data() + off);
    off += 4;
    if (off + static_cast<size_t>(frees) * 16 > body) return false;
    for (uint32_t k = 0; k < frees; ++k) {
      uint64_t fo = LoadU64(data.data() + off);
      uint64_t fs = LoadU64(data.data() + off + 8);
      off += 16;
      p.free_list[fo] = fs;
    }
    if (off + 8 > body) return false;
    uint64_t nbytes = LoadU64(data.data() + off);
    off += 8;
    if (nbytes > body - off) return false;
    p.bytes.assign(data.data() + off, data.data() + off + nbytes);
    off += nbytes;
  }
  if (off != body) return false;
  img->valid = true;
  return true;
}

}  // namespace

std::string CheckpointStore::GenPath(uint64_t generation) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06llu",
                static_cast<unsigned long long>(generation));
  return opts_.dir + "/" + buf;
}

Status CheckpointStore::Open(uint64_t* latest_generation) {
  *latest_generation = 0;
  Status s = MakeDirs(opts_.dir);
  if (!s.ok()) return s;
  std::vector<std::string> names;
  s = ListDir(opts_.dir, &names);
  if (!s.ok() && !s.IsNotFound()) return s;
  for (const std::string& name : names) {
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // A serialize that never published; the rename never ran, so the
      // previous generation is intact and this carcass is garbage.
      RemoveFile(opts_.dir + "/" + name);
      continue;
    }
    uint64_t gen = std::strtoull(name.c_str() + 5, nullptr, 10);
    *latest_generation = std::max(*latest_generation, gen);
  }
  return Status::Ok();
}

Status CheckpointStore::Save(const CheckpointImage& img, uint64_t generation) {
  std::vector<uint8_t> data;
  Serialize(img, generation, &data);
  std::string final_path = GenPath(generation);
  std::string tmp_path = final_path + ".tmp";
  FileHandle f;
  Status s = FileHandle::Open(tmp_path, /*create=*/true, /*truncate=*/true,
                              "media:ckpt", &f);
  if (!s.ok()) return s;
  s = f.WriteAt(0, data.data(), data.size(), nullptr);
  if (s.ok()) s = f.Sync(opts_.fsync_mode);
  f.Close();
  if (!s.ok()) {
    RemoveFile(tmp_path);
    return s;
  }
  s = AtomicRename(tmp_path, final_path, "media:ckpt", opts_.fsync_mode);
  if (!s.ok()) {
    RemoveFile(tmp_path);
    return s;
  }
  // Keep the previous generation as the media-fault fallback; anything
  // older is dead weight.
  std::vector<std::string> names;
  if (ListDir(opts_.dir, &names).ok()) {
    for (const std::string& name : names) {
      if (name.rfind("ckpt-", 0) != 0) continue;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        continue;
      }
      uint64_t gen = std::strtoull(name.c_str() + 5, nullptr, 10);
      if (gen + 1 < generation) RemoveFile(opts_.dir + "/" + name);
    }
  }
  return Status::Ok();
}

Status CheckpointStore::LoadLatest(CheckpointImage* img, uint64_t* generation,
                                   ScrubReport* report) {
  std::vector<std::string> names;
  Status s = ListDir(opts_.dir, &names);
  if (s.IsNotFound()) return Status::NotFound("no checkpoint directory");
  if (!s.ok()) return s;
  std::vector<uint64_t> gens;
  for (const std::string& name : names) {
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      continue;
    }
    gens.push_back(std::strtoull(name.c_str() + 5, nullptr, 10));
  }
  std::sort(gens.rbegin(), gens.rend());
  for (uint64_t gen : gens) {
    std::vector<uint8_t> data;
    // Use whatever bytes the device yields; verification decides.
    ReadEntireFile(GenPath(gen), "media:ckpt", &data);
    CheckpointImage candidate;
    if (Deserialize(data, gen, &candidate)) {
      *img = std::move(candidate);
      *generation = gen;
      return Status::Ok();
    }
    ++report->checkpoint_generations_discarded;
  }
  return Status::NotFound("no usable checkpoint generation");
}

}  // namespace brahma
