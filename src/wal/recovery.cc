#include "wal/recovery.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"

namespace brahma {

namespace {

void FillObject(ObjectStore* store, ObjectId oid,
                const std::vector<ObjectId>& refs,
                const std::vector<uint8_t>& data) {
  ObjectHeader* h = store->Get(oid);
  if (h == nullptr) return;
  ObjectStore::GuardForWrite wg(store, oid);
  for (uint32_t i = 0; i < h->num_refs && i < refs.size(); ++i) {
    h->refs()[i] = refs[i];
  }
  if (!data.empty() && data.size() == h->data_size) {
    std::memcpy(h->data(), data.data(), data.size());
  }
}

// Recovery-time in-place slot/data rewrite: resolves the object and
// applies fn under a write pin so a disk-backed arena cannot evict or
// write back the frame mid-mutation. Recovery is single-threaded; the
// pin is about frame lifecycle, not concurrency.
template <typename Fn>
void ApplyInPlace(ObjectStore* store, ObjectId oid, Fn fn) {
  ObjectHeader* h = store->Get(oid);
  if (h == nullptr) return;
  ObjectStore::GuardForWrite wg(store, oid);
  fn(h);
}

}  // namespace

void RedoApply(ObjectStore* store, const LogRecord& rec) {
  switch (rec.type) {
    case LogRecordType::kCreate:
      if (!store->Validate(rec.oid)) {
        store->CreateObjectAt(rec.oid, rec.num_refs, rec.data_size);
      }
      FillObject(store, rec.oid, rec.refs_image, rec.new_data);
      break;
    case LogRecordType::kFree:
      if (store->Validate(rec.oid)) store->FreeObject(rec.oid);
      break;
    case LogRecordType::kSetRef:
      ApplyInPlace(store, rec.oid, [&rec](ObjectHeader* h) {
        if (rec.slot < h->num_refs) h->refs()[rec.slot] = rec.new_ref;
      });
      break;
    case LogRecordType::kUpdateData:
      ApplyInPlace(store, rec.oid, [&rec](ObjectHeader* h) {
        if (rec.new_data.size() == h->data_size) {
          std::memcpy(h->data(), rec.new_data.data(), rec.new_data.size());
        }
      });
      break;
    case LogRecordType::kClr:
      // CLR payloads describe the compensating action: redo it forward.
      switch (rec.compensates) {
        case LogRecordType::kSetRef:
          ApplyInPlace(store, rec.oid, [&rec](ObjectHeader* h) {
            if (rec.slot < h->num_refs) h->refs()[rec.slot] = rec.new_ref;
          });
          break;
        case LogRecordType::kUpdateData:
          ApplyInPlace(store, rec.oid, [&rec](ObjectHeader* h) {
            if (rec.new_data.size() == h->data_size) {
              std::memcpy(h->data(), rec.new_data.data(),
                          rec.new_data.size());
            }
          });
          break;
        case LogRecordType::kCreate:  // compensating action: free
          if (store->Validate(rec.oid)) store->FreeObject(rec.oid);
          break;
        case LogRecordType::kFree:  // compensating action: recreate
          if (!store->Validate(rec.oid)) {
            store->CreateObjectAt(rec.oid, rec.num_refs, rec.data_size);
          }
          FillObject(store, rec.oid, rec.refs_image, rec.new_data);
          break;
        default:
          break;
      }
      break;
    default:
      break;
  }
}

void UndoApply(ObjectStore* store, const LogRecord& rec) {
  switch (rec.type) {
    case LogRecordType::kCreate:
      if (store->Validate(rec.oid)) store->FreeObject(rec.oid);
      break;
    case LogRecordType::kFree:
      if (!store->Validate(rec.oid)) {
        store->CreateObjectAt(rec.oid, rec.num_refs, rec.data_size);
      }
      FillObject(store, rec.oid, rec.refs_image, rec.old_data);
      break;
    case LogRecordType::kSetRef:
      ApplyInPlace(store, rec.oid, [&rec](ObjectHeader* h) {
        if (rec.slot < h->num_refs) h->refs()[rec.slot] = rec.old_ref;
      });
      break;
    case LogRecordType::kUpdateData:
      ApplyInPlace(store, rec.oid, [&rec](ObjectHeader* h) {
        if (rec.old_data.size() == h->data_size) {
          std::memcpy(h->data(), rec.old_data.data(), rec.old_data.size());
        }
      });
      break;
    default:
      break;
  }
}

Status RunRestartRecovery(ObjectStore* store, LogManager* log,
                          const CheckpointImage* checkpoint) {
  // Error injection here exercises "recovery itself fails" surfacing
  // (a second crash during restart is the classic double-fault case).
  BRAHMA_FAILPOINT("recovery:start");
  // 1. Restore the last checkpoint image (or empty arenas).
  Lsn redo_from = 1;
  if (checkpoint != nullptr && checkpoint->valid) {
    if (checkpoint->images.size() != store->num_partitions()) {
      return Status::Corruption("checkpoint partition count mismatch");
    }
    for (uint32_t p = 0; p < store->num_partitions(); ++p) {
      store->partition(static_cast<PartitionId>(p))
          .Restore(checkpoint->images[p]);
    }
    store->set_persistent_root(checkpoint->persistent_root);
    redo_from = checkpoint->lsn + 1;
  } else {
    Partition::Image empty;
    empty.high_water = Partition::kBaseOffset;
    for (uint32_t p = 0; p < store->num_partitions(); ++p) {
      store->partition(static_cast<PartitionId>(p)).Restore(empty);
    }
  }

  // 2. Redo: repeat history forward from the checkpoint.
  BRAHMA_FAILPOINT("recovery:before-redo");
  for (const LogRecord& rec : log->StableRecordsFrom(redo_from)) {
    RedoApply(store, rec);
  }
  BRAHMA_FAILPOINT("recovery:before-undo");

  // 3. Analysis over the whole stable log: find losers and their last
  // record.
  std::unordered_map<TxnId, Lsn> last_lsn;
  std::unordered_set<TxnId> completed;
  for (const LogRecord& rec : log->StableRecordsFrom(1)) {
    if (rec.txn == kInvalidTxn) continue;
    last_lsn[rec.txn] = std::max(last_lsn[rec.txn], rec.lsn);
    if (rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kAbort) {
      completed.insert(rec.txn);
    }
  }

  // 4. Undo losers in reverse global LSN order, honouring CLR skips.
  std::set<Lsn> to_undo;
  for (const auto& [txn, lsn] : last_lsn) {
    if (completed.count(txn) == 0) to_undo.insert(lsn);
  }
  while (!to_undo.empty()) {
    Lsn lsn = *to_undo.rbegin();
    to_undo.erase(lsn);
    LogRecord rec;
    if (!log->GetRecord(lsn, &rec)) continue;  // truncated: nothing older
    if (rec.type == LogRecordType::kClr) {
      if (rec.undo_next_lsn != kInvalidLsn) to_undo.insert(rec.undo_next_lsn);
    } else {
      UndoApply(store, rec);
      if (rec.prev_lsn != kInvalidLsn) to_undo.insert(rec.prev_lsn);
    }
  }
  return Status::Ok();
}

void RebuildErts(ObjectStore* store, ErtSet* erts) {
  erts->ClearAll();
  for (uint32_t p = 0; p < store->num_partitions(); ++p) {
    Partition& part = store->partition(static_cast<PartitionId>(p));
    part.ForEachLiveObject([&](uint64_t offset) {
      const ObjectHeader* h = part.HeaderAt(offset);
      ObjectId parent(static_cast<PartitionId>(p), offset);
      for (uint32_t i = 0; i < h->num_refs; ++i) {
        ObjectId child = h->refs()[i];
        if (child.valid() && child.partition() != p) {
          erts->For(child.partition()).AddRef(child, parent);
        }
      }
    });
  }
}

std::vector<InterruptedMigration> FindInterruptedMigrations(ObjectStore* store,
                                                            LogManager* log) {
  std::unordered_set<TxnId> committed;
  for (const LogRecord& rec : log->StableRecordsFrom(1)) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn);
  }
  std::vector<InterruptedMigration> out;
  for (const LogRecord& rec : log->StableRecordsFrom(1)) {
    if (rec.type != LogRecordType::kCreate ||
        rec.source != LogSource::kReorg || !rec.reorg_old.valid()) {
      continue;
    }
    if (committed.count(rec.txn) == 0) continue;
    // O_new committed; if O_old is still live the migration never
    // finished and both copies exist.
    if (store->Validate(rec.reorg_old) && store->Validate(rec.oid)) {
      out.push_back(InterruptedMigration{rec.reorg_old, rec.oid});
    }
  }
  return out;
}

}  // namespace brahma
