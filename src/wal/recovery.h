#ifndef BRAHMA_WAL_RECOVERY_H_
#define BRAHMA_WAL_RECOVERY_H_

#include <vector>

#include "common/status.h"
#include "core/ert.h"
#include "storage/object_store.h"
#include "wal/log_manager.h"

namespace brahma {

// A fuzzy-made-sharp checkpoint of the whole store: arena images of every
// partition plus the LSN up to which their contents are complete.
struct CheckpointImage {
  bool valid = false;
  Lsn lsn = kInvalidLsn;
  std::vector<Partition::Image> images;  // one per partition, in order
  ObjectId persistent_root;
};

// ARIES-style restart recovery over the stable log (paper Section 4.4
// context): restores the last checkpoint image (or empty arenas), redoes
// history forward from the checkpoint LSN with idempotent physical
// application, then undoes losers in reverse global LSN order, honouring
// CLR undo_next chains. On return the store is transaction consistent.
Status RunRestartRecovery(ObjectStore* store, LogManager* log,
                          const CheckpointImage* checkpoint);

// Reconstructs every partition's ERT with a complete scan of the
// database — the paper's fallback when ERT updates are not logged
// (Section 4.4, item 1).
void RebuildErts(ObjectStore* store, ErtSet* erts);

// A migration the two-lock variant had in flight at the failure: O_new
// was durably created (committed reorg kCreate with reorg_old set) but
// O_old was never freed, so references to both may exist (Section 4.2).
struct InterruptedMigration {
  ObjectId old_id;
  ObjectId new_id;
};

// Scans the stable log for interrupted migrations.
std::vector<InterruptedMigration> FindInterruptedMigrations(
    ObjectStore* store, LogManager* log);

// Redo/undo application primitives (exposed for tests).
void RedoApply(ObjectStore* store, const LogRecord& rec);
void UndoApply(ObjectStore* store, const LogRecord& rec);

}  // namespace brahma

#endif  // BRAHMA_WAL_RECOVERY_H_
