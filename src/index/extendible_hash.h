#ifndef BRAHMA_INDEX_EXTENDIBLE_HASH_H_
#define BRAHMA_INDEX_EXTENDIBLE_HASH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/latch.h"

namespace brahma {

// Concurrent extendible hash table with multimap semantics.
//
// Brahma implements the TRT and the ERT with extendible hash indices
// (paper Section 5); this is that substrate. The directory doubles when a
// bucket at maximal local depth overflows; buckets hold a small vector of
// entries and split by redistributing on the next hash bit.
//
// Concurrency: a directory latch taken shared for reads/writes that do not
// restructure, exclusive for splits/doubling; mutating bucket operations
// additionally take the bucket latch. Readers of a bucket take its latch
// shared. Latches are short-duration only (never held across user code
// except the ForEach* callbacks, which must not re-enter the same table).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ExtendibleHash {
 public:
  explicit ExtendibleHash(size_t bucket_capacity = 16)
      : bucket_capacity_(bucket_capacity), global_depth_(1) {
    directory_.resize(2);
    directory_[0] = std::make_shared<Bucket>(1);
    directory_[1] = std::make_shared<Bucket>(1);
  }

  ExtendibleHash(const ExtendibleHash&) = delete;
  ExtendibleHash& operator=(const ExtendibleHash&) = delete;

  // Inserts (key, value). Duplicate (key, value) pairs are allowed; the
  // table is a multimap.
  void Insert(const Key& key, const Value& value) {
    uint64_t h = Hash{}(key);
    for (int attempts = 0;; ++attempts) {
      dir_latch_.LockShared();
      std::shared_ptr<Bucket> bucket = BucketFor(h);
      bucket->latch.LockExclusive();
      // Append without splitting when there is room, when the bucket is a
      // single-key overflow chain (splitting cannot separate one key —
      // checked O(1) via first/last), or when splitting has already been
      // tried: inserts stay O(1) even for very hot keys.
      if (bucket->entries.size() < bucket_capacity_ ||
          bucket->entries.front().key == bucket->entries.back().key ||
          attempts >= 2) {
        bucket->entries.push_back({key, value});
        bucket->latch.UnlockExclusive();
        dir_latch_.UnlockShared();
        return;
      }
      bucket->latch.UnlockExclusive();
      dir_latch_.UnlockShared();
      SplitFor(h);
    }
  }

  // Removes one occurrence of (key, value). Returns true if found.
  bool EraseOne(const Key& key, const Value& value) {
    uint64_t h = Hash{}(key);
    SharedLatchGuard dir(&dir_latch_);
    std::shared_ptr<Bucket> bucket = BucketFor(h);
    ExclusiveLatchGuard g(&bucket->latch);
    for (auto it = bucket->entries.begin(); it != bucket->entries.end();
         ++it) {
      if (it->key == key && it->value == value) {
        bucket->entries.erase(it);
        return true;
      }
    }
    return false;
  }

  // Removes all entries with the given key; returns how many were removed.
  size_t EraseKey(const Key& key) {
    uint64_t h = Hash{}(key);
    SharedLatchGuard dir(&dir_latch_);
    std::shared_ptr<Bucket> bucket = BucketFor(h);
    ExclusiveLatchGuard g(&bucket->latch);
    size_t removed = 0;
    auto it = bucket->entries.begin();
    while (it != bucket->entries.end()) {
      if (it->key == key) {
        it = bucket->entries.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  bool ContainsKey(const Key& key) const {
    uint64_t h = Hash{}(key);
    SharedLatchGuard dir(&dir_latch_);
    std::shared_ptr<Bucket> bucket = BucketFor(h);
    SharedLatchGuard g(&bucket->latch);
    return ContainsUnlocked(*bucket, key);
  }

  // Invokes fn(value) for every value stored under key. The bucket latch
  // is held shared for the duration; fn must not touch this table.
  void ForEachValue(const Key& key, const std::function<void(const Value&)>& fn) const {
    uint64_t h = Hash{}(key);
    SharedLatchGuard dir(&dir_latch_);
    std::shared_ptr<Bucket> bucket = BucketFor(h);
    SharedLatchGuard g(&bucket->latch);
    for (const auto& e : bucket->entries) {
      if (e.key == key) fn(e.value);
    }
  }

  // Returns a snapshot copy of the values under key.
  std::vector<Value> Lookup(const Key& key) const {
    std::vector<Value> out;
    ForEachValue(key, [&out](const Value& v) { out.push_back(v); });
    return out;
  }

  // Invokes fn(key, value) on a snapshot of all entries.
  void ForEach(const std::function<void(const Key&, const Value&)>& fn) const {
    std::vector<Entry> snapshot = Snapshot();
    for (const auto& e : snapshot) fn(e.key, e.value);
  }

  size_t Size() const {
    SharedLatchGuard dir(&dir_latch_);
    size_t n = 0;
    for (size_t i = 0; i < directory_.size(); ++i) {
      // Count each distinct bucket once (directory slots alias buckets).
      if (IsPrimarySlot(i)) {
        SharedLatchGuard g(&directory_[i]->latch);
        n += directory_[i]->entries.size();
      }
    }
    return n;
  }

  void Clear() {
    ExclusiveLatchGuard dir(&dir_latch_);
    global_depth_ = 1;
    directory_.assign(2, nullptr);
    directory_[0] = std::make_shared<Bucket>(1);
    directory_[1] = std::make_shared<Bucket>(1);
  }

  int global_depth() const {
    SharedLatchGuard dir(&dir_latch_);
    return global_depth_;
  }

 private:
  struct Entry {
    Key key;
    Value value;
  };

  struct Bucket {
    explicit Bucket(int depth) : local_depth(depth) {}
    int local_depth;
    std::vector<Entry> entries;
    mutable SharedLatch latch;
  };

  std::shared_ptr<Bucket> BucketFor(uint64_t h) const {
    return directory_[h & ((uint64_t{1} << global_depth_) - 1)];
  }

  static bool ContainsUnlocked(const Bucket& b, const Key& key) {
    for (const auto& e : b.entries) {
      if (e.key == key) return true;
    }
    return false;
  }

  // True if slot i is the lowest directory index referencing its bucket.
  bool IsPrimarySlot(size_t i) const {
    int ld = directory_[i]->local_depth;
    return (i & ((uint64_t{1} << ld) - 1)) == i;
  }

  // Splits the bucket responsible for hash h, doubling the directory if
  // required. Caller must hold no latches.
  void SplitFor(uint64_t h) {
    ExclusiveLatchGuard dir(&dir_latch_);
    size_t slot = h & ((uint64_t{1} << global_depth_) - 1);
    std::shared_ptr<Bucket> old = directory_[slot];
    if (old->entries.size() < bucket_capacity_) return;  // raced; retry insert
    if (old->local_depth == global_depth_) {
      // Double the directory.
      size_t n = directory_.size();
      directory_.resize(n * 2);
      for (size_t i = 0; i < n; ++i) directory_[n + i] = directory_[i];
      ++global_depth_;
    }
    int new_depth = old->local_depth + 1;
    auto b0 = std::make_shared<Bucket>(new_depth);
    auto b1 = std::make_shared<Bucket>(new_depth);
    uint64_t bit = uint64_t{1} << old->local_depth;
    for (const auto& e : old->entries) {
      uint64_t eh = Hash{}(e.key);
      (eh & bit ? b1 : b0)->entries.push_back(e);
    }
    // Re-point every directory slot that referenced the old bucket.
    for (size_t i = 0; i < directory_.size(); ++i) {
      if (directory_[i] == old) {
        directory_[i] = (i & bit) ? b1 : b0;
      }
    }
  }

  std::vector<Entry> Snapshot() const {
    SharedLatchGuard dir(&dir_latch_);
    std::vector<Entry> out;
    for (size_t i = 0; i < directory_.size(); ++i) {
      if (IsPrimarySlot(i)) {
        SharedLatchGuard g(&directory_[i]->latch);
        out.insert(out.end(), directory_[i]->entries.begin(),
                   directory_[i]->entries.end());
      }
    }
    return out;
  }

  const size_t bucket_capacity_;
  int global_depth_;
  std::vector<std::shared_ptr<Bucket>> directory_;
  mutable SharedLatch dir_latch_;
};

}  // namespace brahma

#endif  // BRAHMA_INDEX_EXTENDIBLE_HASH_H_
