// Swarm client driver for the networked object server (DESIGN.md §14).
//
// One process multiplexes --connections non-blocking TCP connections onto
// a single epoll loop, each running a closed loop of kTraverse requests
// (the paper's Section 5.2 random-walk transaction, executed server-side).
// A walk that loses a deadlock/timeout race is retried until it commits,
// and the whole retry chain counts as ONE user transaction whose latency
// spans first send to final OK — the paper's response-time accounting.
//
// Every completed transaction appends one sample line to --out:
//
//   <completion CLOCK_REALTIME microseconds> <latency microseconds>
//
// so a parent harness (bench_net_server) can fork many of these, stamp
// reorganization start/stop against the same realtime clock, and split
// the merged samples into before/during/after phases. SIGTERM (or
// --duration-s elapsing) stops the loop gracefully and flushes the file;
// the parent may also kill -9 one of us mid-run to prove the server
// survives abrupt client death.
//
// Usage:
//   swarm_client --port P [--host 127.0.0.1] [--connections 64]
//     [--duration-s 10] [--steps 8] [--update-permille 500]
//     [--ref-mut-permille 200] [--partitions 10] [--seed 1]
//     [--out swarm.samples]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "net/wire.h"

namespace {

volatile sig_atomic_t g_stop = 0;
void OnSigTerm(int) { g_stop = 1; }

int64_t MonoUs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000000LL + ts.tv_nsec / 1000;
}

int64_t RealUs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return ts.tv_sec * 1000000LL + ts.tv_nsec / 1000;
}

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t connections = 64;
  double duration_s = 10.0;
  uint32_t steps = 8;
  uint32_t update_permille = 500;
  uint32_t ref_mut_permille = 200;
  uint32_t partitions = 10;
  uint64_t seed = 1;
  // Mean exponential think time between transactions. 0 = closed loop
  // (a new walk fires the moment the previous one commits); > 0 keeps
  // the offered load below saturation so tail latency measures the
  // server, not the client's own queueing.
  double think_ms = 0;
  std::string out;
};

struct Sample {
  int64_t complete_real_us;
  int64_t latency_us;
};

// One multiplexed connection: a closed-loop requester with its own
// buffers. `txn_start_us` holds across retries of the same walk.
struct Conn {
  int fd = -1;
  uint32_t id = 0;
  std::vector<uint8_t> in;
  std::vector<uint8_t> out;
  size_t out_off = 0;
  bool want_write = false;
  bool connecting = false;
  int64_t txn_start_us = 0;
  uint64_t attempts = 0;
  uint64_t rng_state = 0;
  // Invalidates scheduled think wake-ups across a reconnect (the new
  // session starts its own transaction immediately).
  uint32_t generation = 0;
};

struct Stats {
  uint64_t committed = 0;
  uint64_t retries = 0;
  uint64_t errors = 0;
  uint64_t reconnects = 0;
};

bool IsRetryable(const brahma::Status& st) {
  return st.IsTimedOut() || st.IsAborted() || st.IsDeadlockVictim() ||
         st.IsBusy();
}

class Swarm {
 public:
  explicit Swarm(const Options& opts) : opts_(opts) {}

  int Run() {
    epfd_ = epoll_create1(0);
    if (epfd_ < 0) {
      perror("epoll_create1");
      return 1;
    }
    conns_.resize(opts_.connections);
    for (uint32_t i = 0; i < opts_.connections; ++i) {
      conns_[i].id = i;
      conns_[i].rng_state =
          opts_.seed ^ (0x5851F42D4C957F2Dull * (i + 1));
      if (!Connect(&conns_[i])) return 1;
    }

    const int64_t t_end = MonoUs() +
        static_cast<int64_t>(opts_.duration_s * 1e6);
    std::vector<epoll_event> events(256);
    while (!g_stop && MonoUs() < t_end) {
      int timeout_ms = 100;
      if (!think_heap_.empty()) {
        const int64_t wait_us = think_heap_.top().due_us - MonoUs();
        if (wait_us <= 0) {
          timeout_ms = 0;
        } else if (wait_us / 1000 < timeout_ms) {
          timeout_ms = static_cast<int>(wait_us / 1000) + 1;
        }
      }
      int n = epoll_wait(epfd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        perror("epoll_wait");
        return 1;
      }
      for (int i = 0; i < n; ++i) {
        Conn* c = &conns_[events[i].data.u32];
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          Reconnect(c);
          continue;
        }
        if (events[i].events & EPOLLOUT) {
          if (!OnWritable(c)) continue;
        }
        if (events[i].events & EPOLLIN) {
          OnReadable(c);
        }
      }
      FireDueThinks();
    }
    for (Conn& c : conns_) {
      if (c.fd >= 0) close(c.fd);
    }
    close(epfd_);
    return Flush();
  }

 private:
  bool Connect(Conn* c) {
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      perror("socket");
      return false;
    }
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
      fprintf(stderr, "bad host %s\n", opts_.host.c_str());
      close(fd);
      return false;
    }
    int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      perror("connect");
      close(fd);
      return false;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    c->fd = fd;
    c->in.clear();
    c->out.clear();
    c->out_off = 0;
    c->connecting = (rc != 0);
    c->txn_start_us = 0;
    c->attempts = 0;
    // The first traverse is queued immediately; it goes out once the
    // connect completes (EPOLLOUT) or right away if it already did.
    QueueTraverse(c);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u32 = c->id;
    c->want_write = true;
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      perror("epoll_ctl ADD");
      close(fd);
      c->fd = -1;
      return false;
    }
    return true;
  }

  void Reconnect(Conn* c) {
    if (c->fd >= 0) {
      epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd, nullptr);
      close(c->fd);
      c->fd = -1;
    }
    ++c->generation;
    ++stats_.reconnects;
    if (!Connect(c)) {
      // Server gone: give up on this connection slot; the rest carry on.
      c->fd = -1;
    }
  }

  void QueueTraverse(Conn* c) {
    brahma::net::TraverseRequest req;
    req.home_partition = 1 + (c->id % opts_.partitions);
    req.steps = opts_.steps;
    req.update_permille = opts_.update_permille;
    req.ref_mutation_permille = opts_.ref_mut_permille;
    req.seed = opts_.seed + c->id * 0x9E3779B97F4A7C15ull + c->attempts;
    ++c->attempts;
    std::vector<uint8_t> payload;
    brahma::net::EncodeTraverseRequest(&payload, req);
    brahma::net::AppendFrame(
        &c->out, static_cast<uint8_t>(brahma::net::Op::kTraverse), payload);
    if (c->txn_start_us == 0) c->txn_start_us = MonoUs();
  }

  // Returns false if the connection died (and was recycled).
  bool OnWritable(Conn* c) {
    c->connecting = false;
    while (c->out_off < c->out.size()) {
      ssize_t w = send(c->fd, c->out.data() + c->out_off,
                       c->out.size() - c->out_off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        Reconnect(c);
        return false;
      }
      c->out_off += static_cast<size_t>(w);
    }
    if (c->out_off >= c->out.size()) {
      c->out.clear();
      c->out_off = 0;
      SetWantWrite(c, false);
    }
    return true;
  }

  void SetWantWrite(Conn* c, bool on) {
    if (c->want_write == on) return;
    c->want_write = on;
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.u32 = c->id;
    epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void OnReadable(Conn* c) {
    uint8_t buf[4096];
    for (;;) {
      ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        Reconnect(c);
        return;
      }
      if (n == 0) {
        Reconnect(c);
        return;
      }
      c->in.insert(c->in.end(), buf, buf + n);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
    }
    // Parse every complete reply frame buffered so far.
    size_t consumed = 0;
    for (;;) {
      uint8_t op = 0;
      const uint8_t* payload = nullptr;
      uint32_t payload_len = 0;
      size_t frame_len = 0;
      brahma::net::FrameResult fr = brahma::net::ParseFrame(
          c->in.data() + consumed, c->in.size() - consumed, &op, &payload,
          &payload_len, &frame_len);
      if (fr == brahma::net::FrameResult::kNeedMore) break;
      if (fr != brahma::net::FrameResult::kFrame) {
        Reconnect(c);
        return;
      }
      consumed += frame_len;
      // A false return means the connection was recycled and c->in no
      // longer holds the bytes we were parsing.
      if (!OnReply(c, payload, payload_len)) return;
    }
    if (consumed > 0) {
      c->in.erase(c->in.begin(),
                  c->in.begin() + static_cast<long>(consumed));
    }
    if (!c->out.empty()) SetWantWrite(c, true);
    if (c->want_write) OnWritable(c);
  }

  bool OnReply(Conn* c, const uint8_t* payload, uint32_t payload_len) {
    brahma::net::PayloadReader r(payload, payload_len);
    brahma::Status st;
    if (!DecodeStatus(&r, &st)) {
      Reconnect(c);
      return false;
    }
    bool txn_done = false;
    if (st.ok()) {
      Sample s;
      s.complete_real_us = RealUs();
      s.latency_us = MonoUs() - c->txn_start_us;
      samples_.push_back(s);
      ++stats_.committed;
      c->txn_start_us = 0;
      txn_done = true;
    } else if (IsRetryable(st)) {
      // Same user transaction retrying: no think time inside the chain.
      ++stats_.retries;
    } else {
      // Invalid argument / internal: do not hot-loop on a poisoned
      // request — count it and move on to a fresh transaction.
      ++stats_.errors;
      c->txn_start_us = 0;
      txn_done = true;
    }
    if (txn_done && opts_.think_ms > 0) {
      ScheduleThink(c);
    } else {
      QueueTraverse(c);
    }
    return true;
  }

  // Exponential think time (Poisson-ish arrivals per connection), capped
  // at 5x the mean so a tail draw cannot idle a connection forever.
  void ScheduleThink(Conn* c) {
    uint64_t x = c->rng_state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    c->rng_state = x;
    const double u =
        (static_cast<double>(x >> 11) + 1.0) / 9007199254740993.0;
    double think_us = -opts_.think_ms * 1000.0 * std::log(u);
    think_us = std::min(think_us, opts_.think_ms * 5000.0);
    think_heap_.push(
        ThinkEntry{MonoUs() + static_cast<int64_t>(think_us), c->id,
                   c->generation});
  }

  void FireDueThinks() {
    if (think_heap_.empty()) return;
    const int64_t now = MonoUs();
    while (!think_heap_.empty() && think_heap_.top().due_us <= now) {
      const ThinkEntry e = think_heap_.top();
      think_heap_.pop();
      Conn* c = &conns_[e.conn_id];
      // A reconnect already started a fresh transaction; drop the stale
      // wake-up instead of double-queueing on the new session.
      if (c->fd < 0 || c->generation != e.generation) continue;
      QueueTraverse(c);
      if (!c->out.empty()) {
        SetWantWrite(c, true);
        OnWritable(c);
      }
    }
  }

  int Flush() {
    FILE* f = stdout;
    if (!opts_.out.empty()) {
      f = fopen(opts_.out.c_str(), "w");
      if (f == nullptr) {
        perror("fopen --out");
        return 1;
      }
    }
    for (const Sample& s : samples_) {
      fprintf(f, "%lld %lld\n", static_cast<long long>(s.complete_real_us),
              static_cast<long long>(s.latency_us));
    }
    fprintf(f, "# committed %llu retries %llu errors %llu reconnects %llu\n",
            static_cast<unsigned long long>(stats_.committed),
            static_cast<unsigned long long>(stats_.retries),
            static_cast<unsigned long long>(stats_.errors),
            static_cast<unsigned long long>(stats_.reconnects));
    bool ok = ferror(f) == 0;
    if (f != stdout) ok = (fclose(f) == 0) && ok;
    return ok ? 0 : 1;
  }

  struct ThinkEntry {
    int64_t due_us;
    uint32_t conn_id;
    uint32_t generation;
    bool operator>(const ThinkEntry& o) const { return due_us > o.due_us; }
  };

  Options opts_;
  int epfd_ = -1;
  std::vector<Conn> conns_;
  std::vector<Sample> samples_;
  Stats stats_;
  std::priority_queue<ThinkEntry, std::vector<ThinkEntry>,
                      std::greater<ThinkEntry>>
      think_heap_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "missing value for %s\n", a.c_str());
        exit(2);
      }
      return argv[++i];
    };
    if (a == "--host") {
      opts.host = next();
    } else if (a == "--port") {
      opts.port = static_cast<uint16_t>(atoi(next()));
    } else if (a == "--connections") {
      opts.connections = static_cast<uint32_t>(atoi(next()));
    } else if (a == "--duration-s") {
      opts.duration_s = atof(next());
    } else if (a == "--steps") {
      opts.steps = static_cast<uint32_t>(atoi(next()));
    } else if (a == "--update-permille") {
      opts.update_permille = static_cast<uint32_t>(atoi(next()));
    } else if (a == "--ref-mut-permille") {
      opts.ref_mut_permille = static_cast<uint32_t>(atoi(next()));
    } else if (a == "--partitions") {
      opts.partitions = static_cast<uint32_t>(atoi(next()));
    } else if (a == "--think-ms") {
      opts.think_ms = atof(next());
    } else if (a == "--seed") {
      opts.seed = strtoull(next(), nullptr, 10);
    } else if (a == "--out") {
      opts.out = next();
    } else {
      fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (opts.port == 0) {
    fprintf(stderr, "--port is required\n");
    return 2;
  }
  signal(SIGTERM, OnSigTerm);
  signal(SIGINT, OnSigTerm);
  signal(SIGPIPE, SIG_IGN);

  Swarm swarm(opts);
  return swarm.Run();
}
