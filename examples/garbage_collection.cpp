// Copying garbage collection with physical references (paper Section
// 4.6): IRA detects every live object of a partition during its fuzzy
// traversal, so migrating the live set out of the partition and sweeping
// what remains *is* a partitioned copying collector — including garbage
// cycles, which reference counting cannot reclaim — all while references
// stay physical and transactions keep running.

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/ira.h"
#include "workload/driver.h"
#include "workload/graph_builder.h"

using namespace brahma;

int main() {
  DatabaseOptions options;
  options.num_data_partitions = 4;
  Database db(options);

  WorkloadParams params;
  params.num_partitions = 3;
  params.objects_per_partition = 85 * 8;
  params.mpl = 6;
  BuiltGraph graph;
  GraphBuilder builder(&db);
  if (!builder.Build(params, &graph).ok()) return 1;

  // Litter partition 1 with unreachable structures: chains and cycles
  // that no live object references.
  uint64_t garbage_created = 0;
  {
    std::unique_ptr<Transaction> txn = db.Begin();
    Random rng(5);
    for (int g = 0; g < 30; ++g) {
      std::vector<ObjectId> blob;
      for (int i = 0; i < 5; ++i) {
        ObjectId oid;
        if (!txn->CreateObject(1, 2, 24, &oid).ok()) break;
        blob.push_back(oid);
        ++garbage_created;
      }
      for (size_t i = 0; i + 1 < blob.size(); ++i) {
        txn->SetRef(blob[i], 0, blob[i + 1]);
      }
      if (!blob.empty() && rng.Bernoulli(0.5)) {
        txn->SetRef(blob.back(), 0, blob.front());  // make it a cycle
      }
    }
    txn->Commit();
  }
  std::printf("created %llu unreachable (garbage) objects in partition 1\n",
              static_cast<unsigned long long>(garbage_created));
  std::printf("partition 1 holds %llu objects, of which %u are live\n",
              static_cast<unsigned long long>(
                  garbage_created + params.objects_per_partition),
              params.objects_per_partition);

  // Evacuate the live set into partition 4 and reclaim the garbage, with
  // the workload running throughout.
  std::atomic<bool> done{false};
  ReorgStats stats;
  Status st;
  std::thread reorg([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    CopyOutPlanner planner(4);
    IraOptions opt;
    opt.collect_garbage = true;
    st = db.RunIra(1, &planner, opt, &stats);
    done.store(true);
  });
  WorkloadDriver driver(&db, params, graph);
  DriverResult run = driver.Run([&]() { return done.load(); }, 0);
  reorg.join();
  if (!st.ok()) {
    std::printf("reorg failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("copying collection finished in %.1f ms:\n", stats.duration_ms);
  std::printf("  live objects migrated : %llu\n",
              static_cast<unsigned long long>(stats.objects_migrated));
  std::printf("  garbage reclaimed     : %llu\n",
              static_cast<unsigned long long>(stats.garbage_collected));
  FragmentationStats fs = db.store().partition(1).GetFragmentationStats();
  std::printf("  partition 1 after     : %llu live bytes (fully reclaimed)\n",
              static_cast<unsigned long long>(fs.live_bytes));
  std::printf("  concurrent workload   : %llu commits, avg %.2f ms\n",
              static_cast<unsigned long long>(run.committed),
              run.response_ms.mean());
  return 0;
}
