// Failure handling (paper Section 4.4): each object migration runs in a
// transaction, so a crash mid-reorganization loses at most the in-flight
// migration; ARIES-style restart recovery restores a consistent store,
// the ERTs are rebuilt by a database scan, and the reorganization is
// simply started afresh for the objects yet to be migrated.
//
// This example checkpoints, crashes the database "mid-life", recovers,
// verifies the object graph, and completes the reorganization.

#include <cstdio>

#include "core/database.h"
#include "core/ira.h"
#include "workload/graph_builder.h"
#include "workload/random_walk.h"

using namespace brahma;

namespace {

uint64_t CountLive(Database* db, PartitionId p) {
  uint64_t n = 0;
  db->store().partition(p).ForEachLiveObject([&n](uint64_t) { ++n; });
  return n;
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.num_data_partitions = 3;
  Database db(options);

  WorkloadParams params;
  params.num_partitions = 2;
  params.objects_per_partition = 85 * 6;
  BuiltGraph graph;
  GraphBuilder builder(&db);
  if (!builder.Build(params, &graph).ok()) return 1;
  std::printf("built %llu objects; taking a checkpoint\n",
              static_cast<unsigned long long>(graph.objects_created));
  db.Checkpoint();

  // Run some committed work after the checkpoint, plus one transaction
  // that will be in flight (uncommitted) at the crash.
  Random rng(17);
  for (int i = 0; i < 25; ++i) {
    RunWalkOnce(&db, params, graph, 1, &rng);
  }
  ObjectId orphan;
  {
    std::unique_ptr<Transaction> loser = db.Begin();
    loser->CreateObject(1, 0, 8, &orphan);
    // Force its records to the stable log, then crash before commit: the
    // transaction is a loser and recovery must undo it.
    db.log().Flush(db.log().last_lsn());
    std::printf("crashing with transaction %llu still active...\n",
                static_cast<unsigned long long>(loser->id()));
    db.SimulateCrash();
    loser.release();  // the crashed process never runs this destructor
  }

  Status s = db.Recover();
  std::printf("restart recovery: %s\n", s.ToString().c_str());
  if (!s.ok()) return 1;
  std::printf("  loser's object rolled back: Validate(%s) = %s\n",
              orphan.ToString().c_str(),
              db.store().Validate(orphan) ? "true" : "false");
  std::printf("  partition 1 live objects: %llu (as before the crash)\n",
              static_cast<unsigned long long>(CountLive(&db, 1)));

  // The recovered database is fully operational: run the reorganization
  // (afresh, as the paper prescribes after a failure) and keep working.
  CopyOutPlanner planner(3);
  ReorgStats stats;
  s = db.RunIra(1, &planner, IraOptions{}, &stats);
  std::printf("post-recovery reorganization: %s, migrated %llu objects\n",
              s.ToString().c_str(),
              static_cast<unsigned long long>(stats.objects_migrated));

  // Crash again *after* the reorganization and recover: the migration is
  // durable (every migration transaction commits and forces the log).
  db.SimulateCrash();
  s = db.Recover();
  std::printf("second recovery: %s\n", s.ToString().c_str());
  std::printf("  partition 1 now holds %llu objects, partition 3 holds "
              "%llu — the migration survived the crash\n",
              static_cast<unsigned long long>(CountLive(&db, 1)),
              static_cast<unsigned long long>(CountLive(&db, 3)));

  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    if (RunWalkOnce(&db, params, graph, 1, &rng).ok()) ++committed;
  }
  std::printf("  and the workload still runs: %d/10 walks committed\n",
              committed);
  return committed == 10 ? 0 : 1;
}
