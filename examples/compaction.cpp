// On-line compaction (the paper's first motivating operation): continuous
// allocation/deallocation of variable-length objects fragments a
// partition; IRA packs the survivors while a multi-threaded workload
// keeps reading and updating them.
//
// Prints fragmentation before/after and the impact on concurrent
// transaction latency.

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/ira.h"
#include "workload/driver.h"
#include "workload/graph_builder.h"

using namespace brahma;

int main() {
  DatabaseOptions options;
  options.num_data_partitions = 4;
  options.commit_flush_latency = std::chrono::microseconds(20);
  Database db(options);

  WorkloadParams params;
  params.num_partitions = 3;
  params.objects_per_partition = 85 * 12;
  params.mpl = 8;
  BuiltGraph graph;
  GraphBuilder builder(&db);
  Status s = builder.Build(params, &graph);
  if (!s.ok()) {
    std::printf("build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Fragment partition 1: interleave variable-size filler objects with
  // anchored keeper objects, then free the fillers — classic Swiss
  // cheese, exactly the situation the paper's compaction use case
  // describes ("continuous allocation and deallocation of space for
  // variable length objects can result in fragmentation").
  {
    const int kPairs = 300;
    std::vector<ObjectId> fillers, keepers;
    Random rng(99);
    {
      std::unique_ptr<Transaction> txn = db.Begin(LogSource::kReorg);
      for (int i = 0; i < kPairs; ++i) {
        ObjectId f, k;
        if (!txn->CreateObject(1, 0, 32 + rng.Uniform(160), &f).ok()) break;
        if (!txn->CreateObject(1, 1, 24, &k).ok()) break;
        fillers.push_back(f);
        keepers.push_back(k);
      }
      txn->Commit();
    }
    {
      // Anchor the keepers (they must be live, i.e. externally
      // referenced, to be migrated rather than collected).
      std::unique_ptr<Transaction> txn = db.Begin();
      ObjectId anchor;
      if (!txn->CreateObject(2, static_cast<uint32_t>(keepers.size()), 0,
                             &anchor)
               .ok()) {
        return 1;
      }
      for (size_t i = 0; i < keepers.size(); ++i) {
        txn->SetRef(anchor, static_cast<uint32_t>(i), keepers[i]);
      }
      txn->Commit();
    }
    {
      std::unique_ptr<Transaction> freeer = db.Begin(LogSource::kReorg);
      for (ObjectId f : fillers) freeer->FreeObject(f);
      freeer->Commit();
    }
    db.analyzer().Sync();
  }
  FragmentationStats before =
      db.store().partition(1).GetFragmentationStats();

  std::printf("before compaction: %llu live objects, %llu holes, "
              "%llu free bytes, fragmentation ratio %.2f\n",
              static_cast<unsigned long long>(before.num_live_objects),
              static_cast<unsigned long long>(before.num_holes),
              static_cast<unsigned long long>(before.free_bytes),
              before.FragmentationRatio());

  // Compact on-line: workload runs during the whole reorganization.
  std::atomic<bool> done{false};
  ReorgStats stats;
  Status reorg_status;
  std::thread reorg([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    CompactionPlanner planner;
    reorg_status = db.RunIra(1, &planner, IraOptions{}, &stats);
    done.store(true);
  });
  WorkloadDriver driver(&db, params, graph);
  DriverResult run = driver.Run([&]() { return done.load(); }, 0);
  reorg.join();
  if (!reorg_status.ok()) {
    std::printf("reorg failed: %s\n", reorg_status.ToString().c_str());
    return 1;
  }

  FragmentationStats after = db.store().partition(1).GetFragmentationStats();
  std::printf("after  compaction: %llu live objects, %llu holes, "
              "%llu free bytes, fragmentation ratio %.2f\n",
              static_cast<unsigned long long>(after.num_live_objects),
              static_cast<unsigned long long>(after.num_holes),
              static_cast<unsigned long long>(after.free_bytes),
              after.FragmentationRatio());
  std::printf("high-water mark: %llu -> %llu bytes\n",
              static_cast<unsigned long long>(before.high_water),
              static_cast<unsigned long long>(after.high_water));
  std::printf("compaction moved %llu objects (%.1f KiB) in %.1f ms\n",
              static_cast<unsigned long long>(stats.objects_migrated),
              stats.bytes_moved / 1024.0, stats.duration_ms);
  std::printf("meanwhile the workload committed %llu transactions "
              "(%.0f tps, avg %.2f ms, max %.2f ms)\n",
              static_cast<unsigned long long>(run.committed),
              run.throughput_tps(), run.response_ms.mean(),
              run.response_ms.max());
  return 0;
}
