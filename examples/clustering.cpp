// On-line reclustering (paper Section 1: "the clustering of related
// objects within the same disk block or adjacent disk blocks greatly
// improves performance"): after updates have scattered a partition's
// clusters across the arena, IRA migrates them in breadth-first cluster
// order so each 85-object cluster lands contiguously — while transactions
// keep walking the clusters.
//
// Measures physical locality (mean address distance between each object
// and its cluster root) before and after.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>

#include "core/database.h"
#include "core/fuzzy_traversal.h"
#include "core/ira.h"
#include "workload/driver.h"
#include "workload/graph_builder.h"

using namespace brahma;

namespace {

// Mean |offset(object) - offset(cluster root)| over all cluster members,
// found by BFS from each root within the partition.
double MeanClusterSpread(Database* db, PartitionId p,
                         const std::vector<ObjectId>& roots) {
  double total = 0;
  uint64_t n = 0;
  std::vector<ObjectId> refs;
  for (ObjectId root : roots) {
    std::vector<ObjectId> queue{root};
    std::unordered_set<ObjectId> seen{root};
    size_t head = 0;
    while (head < queue.size()) {
      ObjectId cur = queue[head++];
      total += std::abs(static_cast<double>(cur.offset()) -
                        static_cast<double>(root.offset()));
      ++n;
      if (!ReadRefSlotsLatched(&db->store(), cur, &refs)) continue;
      // Tree children only (slots 0..3); the glue edge leaves the cluster.
      for (uint32_t slot = 0; slot < 4 && slot < refs.size(); ++slot) {
        ObjectId c = refs[slot];
        if (c.valid() && c.partition() == p && seen.insert(c).second) {
          queue.push_back(c);
        }
      }
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 0;
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.num_data_partitions = 4;
  Database db(options);

  WorkloadParams params;
  params.num_partitions = 3;
  params.objects_per_partition = 85 * 12;
  params.mpl = 6;
  BuiltGraph graph;
  GraphBuilder builder(&db);
  if (!builder.Build(params, &graph).ok()) return 1;

  // Scatter partition 1: shuffle its objects by migrating them once in
  // *reverse address order interleaved across clusters* — a quick way to
  // destroy the builder's natural cluster contiguity.
  {
    class ShufflePlanner : public RelocationPlanner {
     public:
      PartitionId Target(ObjectId) override { return 4; }
      void Order(std::vector<ObjectId>* objects) override {
        // Round-robin across the partition: neighbours end up far apart.
        std::vector<ObjectId> shuffled;
        shuffled.reserve(objects->size());
        const size_t stride = 17;
        for (size_t s = 0; s < stride; ++s) {
          for (size_t i = s; i < objects->size(); i += stride) {
            shuffled.push_back((*objects)[i]);
          }
        }
        *objects = std::move(shuffled);
      }
    } shuffler;
    ReorgStats tmp;
    if (!db.RunIra(1, &shuffler, IraOptions{}, &tmp).ok()) return 1;
    // ... and back into partition 1, keeping the scatter.
    CopyOutPlanner back(1);
    ReorgStats tmp2;
    if (!db.RunIra(4, &back, IraOptions{}, &tmp2).ok()) return 1;
  }

  // Refresh the cluster-root handles after the double migration.
  std::vector<ObjectId> roots;
  {
    auto txn = db.Begin();
    txn->Lock(graph.partition_dirs[0], LockMode::kShared);
    txn->ReadRefs(graph.partition_dirs[0], &roots);
    txn->Commit();
  }
  double spread_before = MeanClusterSpread(&db, 1, roots);
  std::printf("mean cluster spread before reclustering: %.0f bytes\n",
              spread_before);

  // Recluster on-line: breadth-first order from the cluster roots.
  std::atomic<bool> done{false};
  ReorgStats stats;
  Status st;
  std::thread reorg([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ClusteringPlanner planner(&db.store(), 4, roots, /*follow_slots=*/4);
    st = db.RunIra(1, &planner, IraOptions{}, &stats);
    done.store(true);
  });
  WorkloadDriver driver(&db, params, graph);
  DriverResult run = driver.Run([&]() { return done.load(); }, 0);
  reorg.join();
  if (!st.ok()) {
    std::printf("reorg failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<ObjectId> new_roots;
  new_roots.reserve(roots.size());
  for (ObjectId r : roots) {
    auto it = stats.relocation.find(r);
    new_roots.push_back(it != stats.relocation.end() ? it->second : r);
  }
  double spread_after = MeanClusterSpread(&db, 4, new_roots);
  std::printf("mean cluster spread after  reclustering: %.0f bytes\n",
              spread_after);
  std::printf("locality improvement: %.1fx (migrated %llu objects in "
              "%.1f ms, workload committed %llu txns meanwhile)\n",
              spread_after > 0 ? spread_before / spread_after : 0.0,
              static_cast<unsigned long long>(stats.objects_migrated),
              stats.duration_ms,
              static_cast<unsigned long long>(run.committed));
  return 0;
}
