// Quickstart: open a Brahmā database, create a few objects wired with
// *physical* references, migrate their partition on-line with the
// Incremental Reorganization Algorithm, and show that every reference was
// rewritten to the objects' new physical addresses.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "core/ira.h"

using namespace brahma;

int main() {
  // A database with 3 data partitions (partition 0 is the root partition).
  DatabaseOptions options;
  options.num_data_partitions = 3;
  Database db(options);

  // Build a tiny object graph inside a transaction:
  //   root(partition 0) -> account(partition 1) -> {order1, order2}(p1)
  ObjectId account, order1, order2;
  {
    std::unique_ptr<Transaction> txn = db.Begin();
    Status s = db.store().EnsurePersistentRoot(/*num_refs=*/4);
    if (!s.ok()) return 1;
    ObjectId root = db.store().persistent_root();
    txn->Lock(root, LockMode::kExclusive);

    txn->CreateObject(/*partition=*/1, /*num_refs=*/2, /*data_size=*/16,
                      &account);
    txn->CreateObject(1, 0, 16, &order1);
    txn->CreateObject(1, 0, 16, &order2);
    txn->SetRef(root, 0, account);
    txn->SetRef(account, 0, order1);
    txn->SetRef(account, 1, order2);
    txn->WriteData(account, std::vector<uint8_t>(16, 0x42));
    txn->Commit();
  }
  std::printf("before reorganization:\n");
  std::printf("  account lives at %s\n", account.ToString().c_str());
  std::printf("  orders  live  at %s, %s\n", order1.ToString().c_str(),
              order2.ToString().c_str());

  // Migrate every object of partition 1 into partition 3, on-line. (Here
  // nothing else is running; see the other examples for concurrency.)
  CopyOutPlanner planner(/*destination=*/3);
  IraOptions ira;
  ReorgStats stats;
  Status s = db.RunIra(/*partition=*/1, &planner, ira, &stats);
  if (!s.ok()) {
    std::printf("reorg failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("after reorganization (%llu objects migrated, %.2f ms):\n",
              static_cast<unsigned long long>(stats.objects_migrated),
              stats.duration_ms);
  ObjectId account_new = stats.relocation[account];
  std::printf("  account moved   to %s\n", account_new.ToString().c_str());
  std::printf("  orders  moved   to %s, %s\n",
              stats.relocation[order1].ToString().c_str(),
              stats.relocation[order2].ToString().c_str());

  // The persistent root's physical reference was rewritten...
  const ObjectHeader* root_hdr = db.store().Get(db.store().persistent_root());
  std::printf("  root's reference now points at %s\n",
              root_hdr->refs()[0].ToString().c_str());
  // ...and so were the account's references to its orders.
  const ObjectHeader* acct_hdr = db.store().Get(account_new);
  std::printf("  account's references now point at %s, %s\n",
              acct_hdr->refs()[0].ToString().c_str(),
              acct_hdr->refs()[1].ToString().c_str());
  std::printf("  account payload preserved: 0x%02X\n", acct_hdr->data()[0]);
  std::printf("  old addresses are gone: Validate(old account) = %s\n",
              db.store().Validate(account) ? "true" : "false");
  return 0;
}
