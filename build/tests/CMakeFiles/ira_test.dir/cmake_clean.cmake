file(REMOVE_RECURSE
  "CMakeFiles/ira_test.dir/ira_test.cc.o"
  "CMakeFiles/ira_test.dir/ira_test.cc.o.d"
  "ira_test"
  "ira_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ira_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
