file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_traversal_test.dir/fuzzy_traversal_test.cc.o"
  "CMakeFiles/fuzzy_traversal_test.dir/fuzzy_traversal_test.cc.o.d"
  "fuzzy_traversal_test"
  "fuzzy_traversal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
