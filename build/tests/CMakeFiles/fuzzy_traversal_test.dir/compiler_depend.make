# Empty compiler generated dependencies file for fuzzy_traversal_test.
# This may be replaced when dependencies are built.
