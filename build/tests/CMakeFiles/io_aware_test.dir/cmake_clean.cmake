file(REMOVE_RECURSE
  "CMakeFiles/io_aware_test.dir/io_aware_test.cc.o"
  "CMakeFiles/io_aware_test.dir/io_aware_test.cc.o.d"
  "io_aware_test"
  "io_aware_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
