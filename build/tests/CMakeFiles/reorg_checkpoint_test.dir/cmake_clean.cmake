file(REMOVE_RECURSE
  "CMakeFiles/reorg_checkpoint_test.dir/reorg_checkpoint_test.cc.o"
  "CMakeFiles/reorg_checkpoint_test.dir/reorg_checkpoint_test.cc.o.d"
  "reorg_checkpoint_test"
  "reorg_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorg_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
