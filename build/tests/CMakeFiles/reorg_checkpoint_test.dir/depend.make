# Empty dependencies file for reorg_checkpoint_test.
# This may be replaced when dependencies are built.
