# Empty compiler generated dependencies file for oid_map_test.
# This may be replaced when dependencies are built.
