file(REMOVE_RECURSE
  "CMakeFiles/oid_map_test.dir/oid_map_test.cc.o"
  "CMakeFiles/oid_map_test.dir/oid_map_test.cc.o.d"
  "oid_map_test"
  "oid_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oid_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
