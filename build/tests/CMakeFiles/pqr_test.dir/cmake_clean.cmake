file(REMOVE_RECURSE
  "CMakeFiles/pqr_test.dir/pqr_test.cc.o"
  "CMakeFiles/pqr_test.dir/pqr_test.cc.o.d"
  "pqr_test"
  "pqr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
