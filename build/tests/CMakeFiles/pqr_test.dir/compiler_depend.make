# Empty compiler generated dependencies file for pqr_test.
# This may be replaced when dependencies are built.
