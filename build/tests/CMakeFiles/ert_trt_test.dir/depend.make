# Empty dependencies file for ert_trt_test.
# This may be replaced when dependencies are built.
