file(REMOVE_RECURSE
  "CMakeFiles/ert_trt_test.dir/ert_trt_test.cc.o"
  "CMakeFiles/ert_trt_test.dir/ert_trt_test.cc.o.d"
  "ert_trt_test"
  "ert_trt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_trt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
