file(REMOVE_RECURSE
  "CMakeFiles/ira_concurrent_test.dir/ira_concurrent_test.cc.o"
  "CMakeFiles/ira_concurrent_test.dir/ira_concurrent_test.cc.o.d"
  "ira_concurrent_test"
  "ira_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ira_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
