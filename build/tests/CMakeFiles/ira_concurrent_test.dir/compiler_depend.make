# Empty compiler generated dependencies file for ira_concurrent_test.
# This may be replaced when dependencies are built.
