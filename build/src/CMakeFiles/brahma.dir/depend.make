# Empty dependencies file for brahma.
# This may be replaced when dependencies are built.
