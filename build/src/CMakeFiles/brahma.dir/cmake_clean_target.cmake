file(REMOVE_RECURSE
  "libbrahma.a"
)
