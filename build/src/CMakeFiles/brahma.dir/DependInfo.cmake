
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/brahma.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/brahma.dir/core/database.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/database.cc.o.d"
  "/root/repo/src/core/fuzzy_traversal.cc" "src/CMakeFiles/brahma.dir/core/fuzzy_traversal.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/fuzzy_traversal.cc.o.d"
  "/root/repo/src/core/io_aware.cc" "src/CMakeFiles/brahma.dir/core/io_aware.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/io_aware.cc.o.d"
  "/root/repo/src/core/ira.cc" "src/CMakeFiles/brahma.dir/core/ira.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/ira.cc.o.d"
  "/root/repo/src/core/log_analyzer.cc" "src/CMakeFiles/brahma.dir/core/log_analyzer.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/log_analyzer.cc.o.d"
  "/root/repo/src/core/offline_reorg.cc" "src/CMakeFiles/brahma.dir/core/offline_reorg.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/offline_reorg.cc.o.d"
  "/root/repo/src/core/pqr.cc" "src/CMakeFiles/brahma.dir/core/pqr.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/pqr.cc.o.d"
  "/root/repo/src/core/relocation.cc" "src/CMakeFiles/brahma.dir/core/relocation.cc.o" "gcc" "src/CMakeFiles/brahma.dir/core/relocation.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/brahma.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/brahma.dir/storage/object_store.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/CMakeFiles/brahma.dir/storage/partition.cc.o" "gcc" "src/CMakeFiles/brahma.dir/storage/partition.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/brahma.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/brahma.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/brahma.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/brahma.dir/txn/transaction.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/CMakeFiles/brahma.dir/txn/transaction_manager.cc.o" "gcc" "src/CMakeFiles/brahma.dir/txn/transaction_manager.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/brahma.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/brahma.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/brahma.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/brahma.dir/wal/recovery.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/brahma.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/brahma.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/graph_builder.cc" "src/CMakeFiles/brahma.dir/workload/graph_builder.cc.o" "gcc" "src/CMakeFiles/brahma.dir/workload/graph_builder.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "src/CMakeFiles/brahma.dir/workload/metrics.cc.o" "gcc" "src/CMakeFiles/brahma.dir/workload/metrics.cc.o.d"
  "/root/repo/src/workload/random_walk.cc" "src/CMakeFiles/brahma.dir/workload/random_walk.cc.o" "gcc" "src/CMakeFiles/brahma.dir/workload/random_walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
