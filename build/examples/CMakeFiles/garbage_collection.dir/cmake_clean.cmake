file(REMOVE_RECURSE
  "CMakeFiles/garbage_collection.dir/garbage_collection.cpp.o"
  "CMakeFiles/garbage_collection.dir/garbage_collection.cpp.o.d"
  "garbage_collection"
  "garbage_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garbage_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
