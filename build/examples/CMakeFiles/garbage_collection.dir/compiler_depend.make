# Empty compiler generated dependencies file for garbage_collection.
# This may be replaced when dependencies are built.
