# Empty compiler generated dependencies file for compaction.
# This may be replaced when dependencies are built.
