file(REMOVE_RECURSE
  "CMakeFiles/compaction.dir/compaction.cpp.o"
  "CMakeFiles/compaction.dir/compaction.cpp.o.d"
  "compaction"
  "compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
