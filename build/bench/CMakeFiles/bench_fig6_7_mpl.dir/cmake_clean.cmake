file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_mpl.dir/bench_fig6_7_mpl.cc.o"
  "CMakeFiles/bench_fig6_7_mpl.dir/bench_fig6_7_mpl.cc.o.d"
  "bench_fig6_7_mpl"
  "bench_fig6_7_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
