# Empty compiler generated dependencies file for bench_io_order.
# This may be replaced when dependencies are built.
