file(REMOVE_RECURSE
  "CMakeFiles/bench_io_order.dir/bench_io_order.cc.o"
  "CMakeFiles/bench_io_order.dir/bench_io_order.cc.o.d"
  "bench_io_order"
  "bench_io_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
