file(REMOVE_RECURSE
  "CMakeFiles/bench_logical_vs_physical.dir/bench_logical_vs_physical.cc.o"
  "CMakeFiles/bench_logical_vs_physical.dir/bench_logical_vs_physical.cc.o.d"
  "bench_logical_vs_physical"
  "bench_logical_vs_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logical_vs_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
