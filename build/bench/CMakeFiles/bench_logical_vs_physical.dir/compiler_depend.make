# Empty compiler generated dependencies file for bench_logical_vs_physical.
# This may be replaced when dependencies are built.
