file(REMOVE_RECURSE
  "CMakeFiles/bench_ira_duration.dir/bench_ira_duration.cc.o"
  "CMakeFiles/bench_ira_duration.dir/bench_ira_duration.cc.o.d"
  "bench_ira_duration"
  "bench_ira_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ira_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
