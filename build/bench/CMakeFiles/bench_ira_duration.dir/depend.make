# Empty dependencies file for bench_ira_duration.
# This may be replaced when dependencies are built.
