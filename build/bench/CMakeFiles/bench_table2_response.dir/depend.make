# Empty dependencies file for bench_table2_response.
# This may be replaced when dependencies are built.
