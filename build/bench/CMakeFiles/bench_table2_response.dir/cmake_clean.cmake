file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_response.dir/bench_table2_response.cc.o"
  "CMakeFiles/bench_table2_response.dir/bench_table2_response.cc.o.d"
  "bench_table2_response"
  "bench_table2_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
