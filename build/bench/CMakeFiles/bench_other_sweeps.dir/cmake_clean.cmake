file(REMOVE_RECURSE
  "CMakeFiles/bench_other_sweeps.dir/bench_other_sweeps.cc.o"
  "CMakeFiles/bench_other_sweeps.dir/bench_other_sweeps.cc.o.d"
  "bench_other_sweeps"
  "bench_other_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
