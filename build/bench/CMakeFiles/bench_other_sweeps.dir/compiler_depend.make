# Empty compiler generated dependencies file for bench_other_sweeps.
# This may be replaced when dependencies are built.
