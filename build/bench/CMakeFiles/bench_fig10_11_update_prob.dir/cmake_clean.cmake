file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_update_prob.dir/bench_fig10_11_update_prob.cc.o"
  "CMakeFiles/bench_fig10_11_update_prob.dir/bench_fig10_11_update_prob.cc.o.d"
  "bench_fig10_11_update_prob"
  "bench_fig10_11_update_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_update_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
