# Empty dependencies file for bench_fig10_11_update_prob.
# This may be replaced when dependencies are built.
