// Reproduces the experiments the paper summarizes in Section 5.3.4 and
// defers to the full version [LRSS99]: sweeps of the glue factor (the
// fraction of inter-partition references), the transaction path length
// (OPSPERTRANS), and the number of partitions.
//
// Expected shape: IRA stays within a few percent of NR across all three
// sweeps; PQR stays significantly lower. More glue (more external
// parents) and longer walks raise contention with PQR's locked parents;
// more partitions dilute the share of threads homed on the reorganized
// partition, softening PQR's collapse but never closing the gap.

#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

template <typename Setter>
void Sweep(const char* title, const char* x_name,
           const std::vector<double>& xs, Setter set) {
  std::printf("# %s\n", title);
  PrintSeriesHeader(x_name, {"nr_tps", "ira_tps", "pqr_tps", "nr_art_ms",
                             "ira_art_ms", "pqr_art_ms"});
  for (double x : xs) {
    double tput[3], art[3];
    for (Scenario sc : {Scenario::kNR, Scenario::kIRA, Scenario::kPQR}) {
      ExperimentConfig cfg;
      set(&cfg, x);
      cfg.scenario = sc;
      ExperimentResult r = RunExperiment(cfg);
      tput[static_cast<int>(sc)] = r.driver.throughput_tps();
      art[static_cast<int>(sc)] = r.driver.response_ms.mean();
    }
    PrintSeriesRow(x, {tput[0], tput[1], tput[2], art[0], art[1], art[2]});
  }
  std::printf("\n");
}

void Run() {
  std::vector<double> glues = {0.01, 0.05, 0.2};
  std::vector<double> lengths = {4, 8, 16};
  std::vector<double> partitions = {5, 10};
  if (FullMode()) {
    glues = {0.0, 0.01, 0.05, 0.1, 0.2, 0.4};
    lengths = {2, 4, 8, 16, 32};
    partitions = {2, 5, 10, 15};
  }

  Sweep("Glue factor sweep (Section 5.3.4)", "glue_factor", glues,
        [](ExperimentConfig* cfg, double x) {
          cfg->workload.glue_factor = x;
        });
  Sweep("Transaction path length sweep (Section 5.3.4)", "ops_per_txn",
        lengths, [](ExperimentConfig* cfg, double x) {
          cfg->workload.ops_per_txn = static_cast<uint32_t>(x);
        });
  Sweep("Number of partitions sweep (Section 5.3.4)", "num_partitions",
        partitions, [](ExperimentConfig* cfg, double x) {
          cfg->workload.num_partitions = static_cast<uint32_t>(x);
          // Keep the MPL-to-partition ratio of the default setup.
          cfg->workload.mpl = 3 * static_cast<uint32_t>(x);
        });
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
