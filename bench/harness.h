#ifndef BRAHMA_BENCH_HARNESS_H_
#define BRAHMA_BENCH_HARNESS_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/params.h"
#include "core/database.h"
#include "core/ira.h"
#include "core/pqr.h"
#include "workload/driver.h"
#include "workload/graph_builder.h"
#include "workload/metrics.h"

namespace brahma {
namespace bench {

// Which reorganization utility (if any) runs during the measurement —
// paper Section 5: NR (no reorganization), IRA, PQR.
enum class Scenario { kNR, kIRA, kPQR };

inline const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kNR: return "NR";
    case Scenario::kIRA: return "IRA";
    case Scenario::kPQR: return "PQR";
  }
  return "?";
}

struct ExperimentConfig {
  WorkloadParams workload;                       // Table 1 parameters
  Scenario scenario = Scenario::kNR;
  IraOptions ira;                                // used when scenario == kIRA
  PqrOptions pqr;                                // used when scenario == kPQR
  PartitionId reorg_partition = 1;
  // NR has no natural end; it runs for this long (reorg scenarios run
  // until the reorganization completes, as in the paper).
  double nr_duration_s = 2.0;
  // Reorg scenarios normally end when the reorganization does, which
  // makes the measurement window shrink as workers are added — fine for
  // reorg-side metrics, but it confounds user-side throughput sweeps
  // (the window composition changes with the sweep variable). Setting
  // this keeps the driver running for at least this many seconds total:
  // a fixed window containing one complete reorganization, so user tps
  // is comparable across worker counts. Must exceed the slowest
  // configuration's reorg time or the window degenerates to the old
  // behavior.
  double min_duration_s = 0;
  // Delay before the reorganization starts (lets the MPL threads warm up).
  double warmup_s = 0.05;
  // Commit-time log-force latency (models the disk force that gives the
  // paper's system CPU/I-O overlap). This is the dominant reason the
  // paper's IRA barely dents user throughput: each migration transaction
  // spends most of its life waiting for its commit force, during which
  // user transactions run. The log device is serial (one disk head), so
  // at high MPL the force queue — not the CPU — caps commit throughput.
  std::chrono::microseconds flush_latency = kCommitForceLatency;
  // Group commit across committers (reorg workers + user transactions).
  // Off = every committer queues a serial force of its own (the classic
  // no-group-commit discipline) — the bench ablation baseline.
  bool group_commit = true;
  // Epoch-protected latch-free reads (DESIGN.md §11): user read steps
  // skip the lock manager entirely. Off = the locked baseline where
  // readers queue behind migration transactions' exclusive locks.
  bool latchfree_reads = false;
  // Lock-wait timeout for deadlock resolution. The paper used 1 s on a
  // machine where a transaction averaged ~800 ms at MPL 30 — i.e., the
  // timeout was proportionate to a transaction. On hardware where the
  // same transaction takes ~2 ms, 1 s would make every deadlock cost
  // hundreds of transaction-times and distort all the ratios; we keep
  // the paper's *proportions* (timeout ≈ 25x a median transaction).
  // BRAHMA_BENCH_FULL=1 restores the literal 1 s. Both values live in
  // common/params.h so library defaults and benchmarks stay in sync.
  std::chrono::milliseconds lock_timeout = kCalibratedLockTimeout;
  // Deadlock handling during lock waits: waits-for detection (default),
  // wait-die, or the paper's timeout-only baseline (DESIGN.md §10).
  DeadlockPolicy deadlock_policy = kDefaultDeadlockPolicy;
  // Durability substrate (DESIGN.md §12): kInMemory pays flush_latency
  // per force; kDisk writes real WAL segments + checkpoint images under
  // wal_dir and pays fsync_mode per force (flush_latency is usually 0
  // then — the device provides the latency).
  Durability durability = Durability::kInMemory;
  std::string wal_dir;
  FsyncMode fsync_mode = FsyncMode::kFull;
};

struct ExperimentResult {
  DriverResult driver;
  ReorgStats reorg;
  Status reorg_status;
  double reorg_duration_ms = 0;
  // True when the run's reorganization failed (reorg scenarios only).
  // Benches must not report such a row as a valid measurement; the
  // harness also latches the process-wide failure flag so main() exits
  // nonzero and CI bench-smoke cannot validate garbage stats.
  bool failed = false;
};

// Process-wide failure latch: any experiment whose reorganization failed
// (or any bench-reported write failure) flips it; bench main() returns
// ExitCode() so CI fails the step instead of validating zeroed stats.
inline std::atomic<bool>& FailureFlag() {
  static std::atomic<bool> failed{false};
  return failed;
}

inline void NoteFailure() { FailureFlag().store(true); }

inline int ExitCode() { return FailureFlag().load() ? 1 : 0; }

// True when the full (longer) sweeps were requested.
inline bool FullMode() {
  const char* env = std::getenv("BRAHMA_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

// True when a CI-sized smoke run was requested: tiny workloads, minimal
// sweep points, seconds instead of minutes.
inline bool SmokeMode() {
  const char* env = std::getenv("BRAHMA_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

// Accumulates benchmark rows and writes them as a JSON document:
//   {"bench": "<name>", "rows": [{"k": v, ...}, ...]}
// Keys within a row keep insertion order; values are numbers. No
// external dependencies — the output is consumed by plotting scripts and
// CI artifact diffing.
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void BeginRow() { rows_.emplace_back(); }

  // Safe even when a bench forgets BeginRow: the first Add opens a row
  // instead of dereferencing rows_.back() on an empty vector (UB).
  void Add(const std::string& key, double value) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, value);
  }

  // False on any stdio error (including a short write detected by
  // ferror before fclose, and a failed fclose): a full disk must not
  // silently commit a truncated BENCH_*.json.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      for (size_t j = 0; j < rows_[i].size(); ++j) {
        const auto& [key, value] = rows_[i][j];
        std::fprintf(f, "%s\"%s\": ", j == 0 ? "" : ", ", key.c_str());
        if (std::isfinite(value) && value == static_cast<double>(
                                                 static_cast<long long>(value))) {
          std::fprintf(f, "%lld", static_cast<long long>(value));
        } else if (std::isfinite(value)) {
          std::fprintf(f, "%.6g", value);
        } else {
          std::fprintf(f, "null");
        }
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    const bool write_ok = std::ferror(f) == 0;
    const bool close_ok = std::fclose(f) == 0;
    return write_ok && close_ok;
  }

 private:
  std::string name_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

// Runs one experiment: build the database and the Section 5.2 object
// graph, spawn the MPL workload threads, run the configured
// reorganization concurrently (objects of the reorg partition are copied
// to a spare destination partition), and measure the workload while the
// reorganization is in flight.
inline ExperimentResult RunExperimentExact(const ExperimentConfig& cfg);

inline ExperimentResult RunExperiment(const ExperimentConfig& cfg) {
  ExperimentConfig adjusted = cfg;
  if (FullMode()) adjusted.lock_timeout = kPaperLockTimeout;
  const ExperimentConfig& c = adjusted;
  return RunExperimentExact(c);
}

inline ExperimentResult RunExperimentExact(const ExperimentConfig& cfg) {
  DatabaseOptions dopt;
  // One spare partition at the end is the migration destination.
  dopt.num_data_partitions = cfg.workload.num_partitions + 1;
  // Size partitions for the largest sweeps (objects are ~130 bytes; x4
  // slack for migration copies and fragmentation).
  dopt.partition_capacity =
      std::max<uint64_t>(8ull << 20, cfg.workload.objects_per_partition *
                                         512ull);
  dopt.commit_flush_latency = cfg.flush_latency;
  dopt.group_commit = cfg.group_commit;
  dopt.latchfree_reads = cfg.latchfree_reads;
  dopt.log_truncate_threshold = 500000;
  dopt.lock_timeout = cfg.lock_timeout;
  dopt.deadlock_policy = cfg.deadlock_policy;
  dopt.durability = cfg.durability;
  dopt.wal_dir = cfg.wal_dir;
  dopt.fsync_mode = cfg.fsync_mode;
  Database db(dopt);
  if (!db.durability_status().ok()) {
    std::fprintf(stderr, "durability init failed: %s\n",
                 db.durability_status().ToString().c_str());
    std::exit(1);
  }

  BuiltGraph graph;
  GraphBuilder builder(&db);
  Status s = builder.Build(cfg.workload, &graph);
  if (!s.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  const PartitionId dst =
      static_cast<PartitionId>(cfg.workload.num_partitions + 1);

  ExperimentResult result;
  std::atomic<bool> stop{false};
  std::thread reorg_thread;
  if (cfg.scenario == Scenario::kNR) {
    // Timer thread ends the run.
    reorg_thread = std::thread([&]() {
      // duration<double> keeps sub-millisecond durations: casting to
      // whole milliseconds turned a small nr_duration_s into 0.
      std::this_thread::sleep_for(std::chrono::duration<double>(cfg.nr_duration_s));
      stop.store(true);
    });
  } else {
    reorg_thread = std::thread([&]() {
      Stopwatch window;
      std::this_thread::sleep_for(std::chrono::duration<double>(cfg.warmup_s));
      CopyOutPlanner planner(dst);
      Stopwatch sw;
      if (cfg.scenario == Scenario::kIRA) {
        IraReorganizer ira(db.reorg_context());
        IraOptions opt = cfg.ira;
        opt.lock_timeout = cfg.lock_timeout;
        result.reorg_status =
            ira.Run(cfg.reorg_partition, &planner, opt, &result.reorg);
      } else {
        PqrReorganizer pqr(db.reorg_context());
        PqrOptions opt = cfg.pqr;
        opt.lock_timeout = cfg.lock_timeout;
        result.reorg_status =
            pqr.Run(cfg.reorg_partition, &planner, opt, &result.reorg);
      }
      result.reorg_duration_ms = sw.ElapsedMillis();
      double pad_ms = cfg.min_duration_s * 1e3 - window.ElapsedMillis();
      if (pad_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(pad_ms));
      }
      stop.store(true);
    });
  }

  WorkloadDriver driver(&db, cfg.workload, graph);
  result.driver = driver.Run([&stop]() { return stop.load(); }, 0);
  reorg_thread.join();
  if (cfg.scenario != Scenario::kNR && !result.reorg_status.ok()) {
    std::fprintf(stderr, "reorg failed: %s\n",
                 result.reorg_status.ToString().c_str());
    result.failed = true;
    NoteFailure();  // main() exits nonzero; CI must not validate this row
  }
  return result;
}

}  // namespace bench
}  // namespace brahma

#endif  // BRAHMA_BENCH_HARNESS_H_
