// Microbenchmarks (google-benchmark) for the substrate primitives: the
// extendible hash index backing the ERT/TRT, object latches, lock
// manager acquire/release, partition allocation, WAL append, and the
// fuzzy traversal over a paper-scale partition.

#include <benchmark/benchmark.h>

#include "common/failpoint.h"
#include "core/database.h"
#include "core/fuzzy_traversal.h"
#include "index/extendible_hash.h"
#include "workload/graph_builder.h"

namespace brahma {
namespace {

void BM_ExtendibleHashInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ExtendibleHash<uint64_t, uint64_t> h(16);
    state.ResumeTiming();
    for (uint64_t i = 0; i < 10000; ++i) h.Insert(i, i);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ExtendibleHashInsert)->Unit(benchmark::kMicrosecond);

void BM_ExtendibleHashLookup(benchmark::State& state) {
  ExtendibleHash<uint64_t, uint64_t> h(16);
  for (uint64_t i = 0; i < 10000; ++i) h.Insert(i, i);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Lookup(k++ % 10000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtendibleHashLookup);

void BM_SharedLatchAcquireRelease(benchmark::State& state) {
  SharedLatch latch;
  for (auto _ : state) {
    latch.LockShared();
    latch.UnlockShared();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedLatchAcquireRelease)->ThreadRange(1, 8);

void BM_LockManagerAcquireRelease(benchmark::State& state) {
  static LockManager* lm = new LockManager();
  ObjectId oid(1, 64 + 8 * state.thread_index());
  TxnId txn = 1 + state.thread_index();
  for (auto _ : state) {
    lm->Acquire(txn, oid, LockMode::kExclusive,
                std::chrono::milliseconds(100));
    lm->Release(txn, oid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockManagerAcquireRelease)->ThreadRange(1, 8);

void BM_PartitionAllocateFree(benchmark::State& state) {
  Partition part(1, 64 << 20);
  std::vector<uint64_t> offsets;
  offsets.reserve(1000);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      uint64_t off;
      part.Allocate(5, 64, &off);
      offsets.push_back(off);
    }
    for (uint64_t off : offsets) part.Free(off);
    offsets.clear();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PartitionAllocateFree)->Unit(benchmark::kMicrosecond);

void BM_WalAppend(benchmark::State& state) {
  LogManager log;
  LogRecord rec;
  rec.type = LogRecordType::kSetRef;
  rec.txn = 1;
  rec.oid = ObjectId(1, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

// Baseline for the failpoint-overhead pair: the same loop body with no
// failpoint site at all.
void BM_WalAppendNoFailpoint(benchmark::State& state) {
  LogManager log;
  LogRecord rec;
  rec.type = LogRecordType::kSetRef;
  rec.txn = 1;
  rec.oid = ObjectId(1, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppendNoFailpoint);

// A failpoint site on the hot path with nothing armed: the whole check is
// one relaxed atomic load, so the delta versus the baseline above must be
// within run-to-run noise.
void BM_WalAppendInactiveFailpoint(benchmark::State& state) {
  FailPoints::Instance().Reset();
  LogManager log;
  LogRecord rec;
  rec.type = LogRecordType::kSetRef;
  rec.txn = 1;
  rec.oid = ObjectId(1, 64);
  for (auto _ : state) {
    BRAHMA_FAILPOINT_HIT("bench:wal-append");
    benchmark::DoNotOptimize(log.Append(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppendInactiveFailpoint);

// The raw cost of an inactive failpoint check in isolation.
void BM_InactiveFailpointCheck(benchmark::State& state) {
  FailPoints::Instance().Reset();
  for (auto _ : state) {
    BRAHMA_FAILPOINT_HIT("bench:isolated");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InactiveFailpointCheck);

void BM_FuzzyTraversalPartition(benchmark::State& state) {
  DatabaseOptions dopt;
  dopt.num_data_partitions = 3;
  Database db(dopt);
  WorkloadParams params;
  params.num_partitions = 2;
  params.objects_per_partition =
      static_cast<uint32_t>(state.range(0));
  BuiltGraph graph;
  GraphBuilder builder(&db);
  Status s = builder.Build(params, &graph);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    FuzzyTraversal t(&db.store(), &db.erts(), &db.trt(), &db.analyzer());
    TraversalResult r = t.Run(1);
    benchmark::DoNotOptimize(r.traversed.size());
  }
  state.SetItemsProcessed(state.iterations() * params.objects_per_partition);
}
BENCHMARK(BM_FuzzyTraversalPartition)
    ->Arg(1020)
    ->Arg(4080)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace brahma

BENCHMARK_MAIN();
