// Parallel IRA migration pipeline: reorganization wall-clock and user
// impact as the number of migrator workers is varied, across MPLs, on
// the Figure 6 workload (Table 1 defaults).
//
// Expected shape: on a commit-bound system (each migration group spends
// most of its life waiting for its commit log force), N workers overlap
// N forces, so reorganization wall-clock drops near-linearly until lock
// contention with user transactions and sibling workers flattens it.
// User throughput should stay within a few percent of the single-worker
// run — the pipeline adds reorganizer concurrency, not reorganizer
// locks held per object.
//
// Emits BENCH_parallel_ira.json next to the binary's working directory.

#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::vector<uint32_t> workers = {1, 2, 4};
  std::vector<uint32_t> mpls = {5, 10};
  WorkloadParams base;
  if (SmokeMode()) {
    workers = {1, 2};
    mpls = {4};
    base.num_partitions = 3;
    base.objects_per_partition = 85 * 4;
  } else if (FullMode()) {
    workers = {1, 2, 4, 8};
    mpls = {1, 5, 10, 20, 30};
  }

  std::printf("# Parallel IRA pipeline — reorg wall-clock and user impact "
              "vs num_workers\n");
  PrintSeriesHeader("mpl", {"workers", "reorg_ms", "speedup", "ira_tps",
                            "ira_art_ms", "lock_timeouts", "backoffs"});
  JsonBenchWriter json("parallel_ira");
  for (uint32_t mpl : mpls) {
    double base_ms = 0;
    for (uint32_t w : workers) {
      ExperimentConfig cfg;
      cfg.workload = base;
      cfg.workload.mpl = mpl;
      cfg.scenario = Scenario::kIRA;
      cfg.ira.num_workers = w;
      ExperimentResult r = RunExperiment(cfg);
      if (w == workers.front()) base_ms = r.reorg_duration_ms;
      const double speedup =
          r.reorg_duration_ms > 0 ? base_ms / r.reorg_duration_ms : 0;
      PrintSeriesRow(mpl, {static_cast<double>(w), r.reorg_duration_ms,
                           speedup, r.driver.throughput_tps(),
                           r.driver.response_ms.mean(),
                           static_cast<double>(r.reorg.lock_timeouts),
                           static_cast<double>(r.reorg.backoff_sleeps)});
      json.BeginRow();
      json.Add("mpl", mpl);
      json.Add("workers", w);
      json.Add("reorg_ms", r.reorg_duration_ms);
      json.Add("speedup_vs_first", speedup);
      json.Add("user_tps", r.driver.throughput_tps());
      json.Add("user_art_ms", r.driver.response_ms.mean());
      json.Add("objects_migrated",
               static_cast<double>(r.reorg.objects_migrated));
      json.Add("lock_timeouts", static_cast<double>(r.reorg.lock_timeouts));
      json.Add("backoff_sleeps",
               static_cast<double>(r.reorg.backoff_sleeps));
      json.Add("reorg_ok", r.reorg_status.ok() ? 1 : 0);
    }
  }
  if (!json.WriteFile("BENCH_parallel_ira.json")) {
    std::fprintf(stderr, "failed to write BENCH_parallel_ira.json\n");
    NoteFailure();
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
