// Disk-backed frame pool (DESIGN.md §13): the paper's Figure-6 style
// traversal workload against a dataset ~4x the pool, before vs after an
// IRA clustering reorganization.
//
// The setup deliberately reproduces the I/O problem reorganization
// exists to fix: NC cluster trees are CREATED interleaved, so each
// cluster's 85 objects are smeared across the whole source partition —
// a cluster traversal touches almost as many pages as objects. The IRA
// pass copies every cluster out in BFS order (ClusteringPlanner), which
// packs each cluster into a handful of contiguous pages. Against a pool
// holding a quarter of the data, that turns most traversal page misses
// into hits: page reads per traversal drop and the hit rate rises,
// while user latency (p50/p99) follows. The memory mode runs the same
// schedule with no pool at all — its rows pin down how much of the
// latency change is layout vs paging.
//
// Emits BENCH_buffer_pool.json in the working directory:
//   {mode_disk, after, traversals, reads_per_traversal, hit_rate,
//    p50_ms, p99_ms, reorg_ok}
// CI asserts reorg_ok == 1 and that disk-mode reads_per_traversal
// strictly drops (and hit_rate rises) from before to after.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/file_util.h"
#include "core/relocation.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace brahma {
namespace bench {
namespace {

struct PoolBenchConfig {
  bool disk = true;
  uint32_t clusters = 48;       // NC
  uint32_t fanout = 4;          // 85-node 4-ary trees: 1+4+16+64
  uint32_t tree_nodes = 85;
  uint32_t data_size = 920;     // ~1 KiB blocks: 4 objects per 4 KiB page
  uint64_t frames = 256;        // 1 MiB pool vs ~4.2 MiB of objects
  int traversal_rounds = 3;     // full passes over all clusters per phase
};

struct PhaseResult {
  double reads_per_traversal = 0;
  double hit_rate = 1.0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint32_t traversals = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

// Read-only traversal transaction: DFS over one cluster tree following
// the tree-child slots, ReadData at every node.
uint32_t TraverseCluster(Database* db, ObjectId root, uint32_t fanout) {
  auto txn = db->Begin();
  uint32_t visited = 0;
  std::vector<ObjectId> stack{root};
  std::vector<ObjectId> refs;
  std::vector<uint8_t> data;
  while (!stack.empty()) {
    ObjectId cur = stack.back();
    stack.pop_back();
    if (!txn->ReadData(cur, &data).ok()) continue;
    ++visited;
    if (!txn->ReadRefs(cur, &refs).ok()) continue;
    for (uint32_t i = 0; i < refs.size() && i < fanout; ++i) {
      if (refs[i].valid()) stack.push_back(refs[i]);
    }
  }
  (void)txn->Commit();
  return visited;
}

PhaseResult MeasurePhase(Database* db, const std::vector<ObjectId>& roots,
                         const PoolBenchConfig& cfg) {
  PhaseResult r;
  BufferPool* pool = db->buffer_pool();
  if (pool != nullptr) {
    // Phase isolation: start cold so the phase pays its own misses.
    Status s = pool->FlushAll();
    if (!s.ok()) {
      std::fprintf(stderr, "FlushAll failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  const uint64_t reads0 =
      db->disk_data() != nullptr ? db->disk_data()->pages_read() : 0;
  const uint64_t hits0 = pool != nullptr ? pool->pool_hits() : 0;
  const uint64_t miss0 = pool != nullptr ? pool->pool_misses() : 0;

  // Random cluster per traversal (deterministic xorshift, identical
  // sequence in every phase and mode). Visiting clusters in creation
  // order would ride the interleaving instead of suffering it: adjacent
  // clusters share pages four-to-a-page in the scattered layout, so a
  // round-robin schedule inherits its predecessor's residency and the
  // scatter cost vanishes from the measurement.
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  std::vector<double> lat_ms;
  const uint32_t traversals =
      static_cast<uint32_t>(cfg.traversal_rounds) *
      static_cast<uint32_t>(roots.size());
  for (uint32_t t = 0; t < traversals; ++t) {
    {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      ObjectId root = roots[rng % roots.size()];
      Stopwatch sw;
      uint32_t visited = TraverseCluster(db, root, cfg.fanout);
      lat_ms.push_back(sw.ElapsedMillis());
      if (visited != cfg.tree_nodes) {
        std::fprintf(stderr, "traversal visited %u != %u nodes\n", visited,
                     cfg.tree_nodes);
        std::exit(1);
      }
      if (pool != nullptr) {
        // Run the epoch-deferred Warm -> Cold releases between
        // traversals (outside the latency window): without this, every
        // evicted page lingers Warm until some reader drains the epoch
        // and gets rescued for free — the pool would silently hold the
        // whole dataset in memory and hide the paging cost the frame
        // budget is supposed to impose.
        pool->FlushRetirements();
        db->epoch().ForceDrainAll();
      }
    }
  }

  r.traversals = static_cast<uint32_t>(lat_ms.size());
  if (db->disk_data() != nullptr) {
    r.reads_per_traversal =
        static_cast<double>(db->disk_data()->pages_read() - reads0) /
        static_cast<double>(r.traversals);
  }
  if (pool != nullptr) {
    const double hits = static_cast<double>(pool->pool_hits() - hits0);
    const double misses = static_cast<double>(pool->pool_misses() - miss0);
    r.hit_rate = hits + misses > 0 ? hits / (hits + misses) : 1.0;
  }
  r.p50_ms = Percentile(&lat_ms, 0.50);
  r.p99_ms = Percentile(&lat_ms, 0.99);
  return r;
}

void RunMode(const PoolBenchConfig& cfg, JsonBenchWriter* json) {
  DatabaseOptions dopt;
  // Partition 1: source (interleaved clusters). Partition 2: the
  // directory of cluster roots (their external parent — exercises ERT
  // fix-ups during the reorg). Partition 3: clustering destination.
  dopt.num_data_partitions = 3;
  dopt.partition_capacity = 16ull << 20;
  dopt.latchfree_reads = true;
  dopt.commit_flush_latency = std::chrono::microseconds(0);
  dopt.lock_timeout = std::chrono::milliseconds(200);
  const std::string data_dir = "./tmp-bench-buffer-pool-data";
  if (cfg.disk) {
    dopt.data_backing = DataBacking::kDisk;
    dopt.data_dir = data_dir;
    dopt.buffer_pool_frames = cfg.frames;
  }
  Database db(dopt);
  if (!db.data_status().ok()) {
    std::fprintf(stderr, "data init failed: %s\n",
                 db.data_status().ToString().c_str());
    std::exit(1);
  }

  // --- Build: allocate tree nodes round-robin ACROSS clusters so every
  // cluster is smeared over the partition, then wire each tree.
  const uint32_t n = cfg.tree_nodes;
  std::vector<std::vector<ObjectId>> nodes(cfg.clusters,
                                           std::vector<ObjectId>(n));
  for (uint32_t j = 0; j < n; ++j) {
    auto txn = db.Begin();
    for (uint32_t c = 0; c < cfg.clusters; ++c) {
      if (!txn->CreateObject(1, cfg.fanout, cfg.data_size, &nodes[c][j])
               .ok()) {
        std::fprintf(stderr, "create failed\n");
        std::exit(1);
      }
    }
    if (!txn->Commit().ok()) {
      std::fprintf(stderr, "create commit failed\n");
      std::exit(1);
    }
  }
  std::vector<ObjectId> roots;
  for (uint32_t c = 0; c < cfg.clusters; ++c) {
    roots.push_back(nodes[c][0]);
    auto txn = db.Begin();
    for (uint32_t j = 0; j < n; ++j) {
      if (!txn->Lock(nodes[c][j], LockMode::kExclusive).ok()) {
        std::fprintf(stderr, "lock failed\n");
        std::exit(1);
      }
      for (uint32_t k = 0; k < cfg.fanout; ++k) {
        uint32_t child = j * cfg.fanout + k + 1;
        if (child >= n) break;
        if (!txn->SetRef(nodes[c][j], k, nodes[c][child]).ok()) {
          std::fprintf(stderr, "wire failed\n");
          std::exit(1);
        }
      }
    }
    if (!txn->Commit().ok()) {
      std::fprintf(stderr, "wire commit failed\n");
      std::exit(1);
    }
  }
  {
    // Directory of roots in partition 2: the clusters' external parent.
    auto txn = db.Begin();
    ObjectId dir_obj;
    if (!txn->CreateObject(2, cfg.clusters, 8, &dir_obj).ok()) {
      std::fprintf(stderr, "directory create failed\n");
      std::exit(1);
    }
    for (uint32_t c = 0; c < cfg.clusters; ++c) {
      if (!txn->SetRef(dir_obj, c, roots[c]).ok()) {
        std::fprintf(stderr, "directory wire failed\n");
        std::exit(1);
      }
    }
    if (!txn->Commit().ok()) {
      std::fprintf(stderr, "directory commit failed\n");
      std::exit(1);
    }
  }
  db.analyzer().Sync();

  // --- Before.
  PhaseResult before = MeasurePhase(&db, roots, cfg);

  // --- IRA clustering reorganization: copy out in BFS order from the
  // cluster roots, tree-child slots only.
  ClusteringPlanner planner(&db.store(), 3, roots, cfg.fanout);
  IraOptions iopt;
  iopt.group_size = 8;
  iopt.lock_timeout = std::chrono::milliseconds(200);
  ReorgStats stats;
  Stopwatch reorg_sw;
  Status rs = db.RunIra(1, &planner, iopt, &stats);
  const double reorg_ms = reorg_sw.ElapsedMillis();
  const bool reorg_ok = rs.ok() && stats.objects_migrated ==
                                       static_cast<uint64_t>(cfg.clusters) * n;
  if (!rs.ok()) {
    std::fprintf(stderr, "reorg failed: %s\n", rs.ToString().c_str());
  }

  // --- After (stale root ids chase the relocation map transparently).
  PhaseResult after = MeasurePhase(&db, roots, cfg);

  for (int phase = 0; phase < 2; ++phase) {
    const PhaseResult& r = phase == 0 ? before : after;
    json->BeginRow();
    json->Add("mode_disk", cfg.disk ? 1 : 0);
    json->Add("after", phase);
    json->Add("traversals", r.traversals);
    json->Add("reads_per_traversal", r.reads_per_traversal);
    json->Add("hit_rate", r.hit_rate);
    json->Add("p50_ms", r.p50_ms);
    json->Add("p99_ms", r.p99_ms);
    json->Add("reorg_ok", reorg_ok ? 1 : 0);
    std::printf(
        "%-6s %-6s traversals=%u reads/trav=%.2f hit_rate=%.3f "
        "p50=%.3fms p99=%.3fms%s\n",
        cfg.disk ? "disk" : "memory", phase == 0 ? "before" : "after",
        r.traversals, r.reads_per_traversal, r.hit_rate, r.p50_ms, r.p99_ms,
        phase == 1 ? (reorg_ok ? " [reorg ok]" : " [REORG FAILED]") : "");
  }
  if (cfg.disk) {
    std::printf(
        "reorg: %.1fms, migrated=%llu, pool misses during reorg=%llu, "
        "evictions=%llu, writebacks=%llu\n",
        reorg_ms, static_cast<unsigned long long>(stats.objects_migrated),
        static_cast<unsigned long long>(stats.pool_misses.load()),
        static_cast<unsigned long long>(stats.frames_evicted.load()),
        static_cast<unsigned long long>(stats.dirty_writebacks.load()));
  }
}

void Run() {
  PoolBenchConfig cfg;
  if (SmokeMode()) {
    cfg.clusters = 12;
    cfg.frames = 64;
    cfg.traversal_rounds = 2;
  }
  // Dataset vs pool: clusters * 85 nodes * ~1 KiB vs frames * 4 KiB.
  const double data_mb = static_cast<double>(cfg.clusters) * cfg.tree_nodes *
                         1024.0 / (1 << 20);
  const double pool_mb =
      static_cast<double>(cfg.frames) * 4096.0 / (1 << 20);
  std::printf("# Buffer pool — Fig-6 traversal workload, %.1f MiB of "
              "clusters vs %.1f MiB pool (%.1fx)\n",
              data_mb, pool_mb, data_mb / pool_mb);

  JsonBenchWriter json("buffer_pool");
  PoolBenchConfig disk_cfg = cfg;
  disk_cfg.disk = true;
  RunMode(disk_cfg, &json);
  PoolBenchConfig mem_cfg = cfg;
  mem_cfg.disk = false;
  RunMode(mem_cfg, &json);
  RemoveDirRecursive("./tmp-bench-buffer-pool-data");
  if (!json.WriteFile("BENCH_buffer_pool.json")) {
    std::fprintf(stderr, "failed to write BENCH_buffer_pool.json\n");
    NoteFailure();
    std::exit(1);
  }
  std::printf("wrote BENCH_buffer_pool.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
