// The paper's Section 7 future work, implemented: in what order should
// objects migrate so that external parents are fetched (disk) or locked
// (main memory) as few times as possible? Compares migration orders —
// ascending address, clustering BFS, and the IoAwarePlanner grouping —
// under an LRU parent-buffer cost model across buffer sizes and glue
// factors, and reports external-lock acquisitions for the main-memory
// case.

#include <cstdio>

#include "bench/harness.h"
#include "core/io_aware.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::printf("# Section 7 future work — migration order vs. external "
              "parent fetches\n");
  std::printf("%-12s %-10s %14s %14s %14s %14s\n", "glue", "buffer",
              "addr_order", "cluster_bfs", "io_aware", "distinct");
  for (double glue : {0.05, 0.2, 0.5}) {
    DatabaseOptions dopt;
    dopt.num_data_partitions = 11;
    Database db(dopt);
    WorkloadParams params;
    params.glue_factor = glue;
    BuiltGraph graph;
    GraphBuilder builder(&db);
    Status s = builder.Build(params, &graph);
    if (!s.ok()) std::exit(1);
    db.analyzer().Sync();

    auto ert = db.erts().For(1).Entries();
    std::vector<ObjectId> objects;
    db.store().partition(1).ForEachLiveObject(
        [&](uint64_t off) { objects.push_back(ObjectId(1, off)); });

    std::vector<ObjectId> addr = objects;
    std::sort(addr.begin(), addr.end());

    ClusteringPlanner cluster(&db.store(), 11, graph.cluster_roots[0],
                              /*follow_slots=*/4);
    std::vector<ObjectId> bfs = objects;
    cluster.Order(&bfs);

    CopyOutPlanner base(11);
    IoAwarePlanner io(&base, &db.erts().For(1));
    std::vector<ObjectId> grouped = objects;
    io.Order(&grouped);

    for (size_t buf : {4u, 16u, 64u, 1u << 20}) {
      uint64_t fa = CountExternalParentFetches(addr, ert, buf);
      uint64_t fb = CountExternalParentFetches(bfs, ert, buf);
      uint64_t fi = CountExternalParentFetches(grouped, ert, buf);
      // Distinct parents = the lower bound any order can reach with an
      // infinite buffer.
      uint64_t lb = CountExternalParentFetches(grouped, ert, 1u << 20);
      char bufname[16];
      if (buf >= (1u << 20)) {
        std::snprintf(bufname, sizeof(bufname), "inf");
      } else {
        std::snprintf(bufname, sizeof(bufname), "%zu", buf);
      }
      std::printf("%-12.2f %-10s %14llu %14llu %14llu %14llu\n", glue,
                  bufname, static_cast<unsigned long long>(fa),
                  static_cast<unsigned long long>(fb),
                  static_cast<unsigned long long>(fi),
                  static_cast<unsigned long long>(lb));
    }
    std::printf("%-12.2f %-10s %14llu %14llu %14llu %14s   (main-memory "
                "lock acquisitions)\n",
                glue, "locks",
                static_cast<unsigned long long>(
                    CountExternalLockAcquisitions(addr, ert)),
                static_cast<unsigned long long>(
                    CountExternalLockAcquisitions(bfs, ert)),
                static_cast<unsigned long long>(
                    CountExternalLockAcquisitions(grouped, ert)),
                "-");
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
