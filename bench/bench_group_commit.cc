// Group-commit WAL force + claim-aware wakeup + adaptive workers: reorg
// wall-clock and user-transaction p99 vs num_workers, with the whole
// stack toggled on/off. "off" rows reproduce the PR 2 pipeline — every
// committer queues a serial force of its own on the one-head log
// device, deferred siblings spin on the blind 1 ms retry timer, and the
// worker count is static — so the emitted JSON is its own baseline.
//
// Expected shape: without batching, MPL user committers plus N reorg
// workers each demand a full device force per commit, so the force
// queue — not the migration work — gates both reorg wall-clock and user
// throughput. Batching the queued forces (one elected flusher per
// batch, the rest absorbed) collapses that queue to ~one force per
// batch; claim-aware wakeup then removes the deferral dead time and the
// adaptive controller stops entangled clusters from thrashing. User p99
// improves for the same reason: commits ride a shared batch instead of
// queueing behind every outstanding force.
//
// Emits BENCH_group_commit.json in the working directory.

#include <string>
#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::vector<uint32_t> workers = {1, 2, 4, 8};
  uint32_t mpl = 10;
  WorkloadParams base;
  if (SmokeMode()) {
    workers = {2, 4};
    mpl = 4;
    base.num_partitions = 3;
    base.objects_per_partition = 85 * 4;
  } else if (FullMode()) {
    workers = {1, 2, 4, 8, 16};
    mpl = 30;
  }

  std::printf("# Group commit + claim wakeup + adaptive workers — reorg "
              "wall-clock and user p99 vs num_workers\n");
  PrintSeriesHeader("mode", {"workers", "reorg_ms", "user_tps", "user_p99_ms",
                             "batches", "absorbed", "claim_wakeups",
                             "shed", "added"});
  JsonBenchWriter json("group_commit");
  // mode 0 = PR 2 baseline (everything off), mode 1 = full stack on.
  for (int gc = 0; gc <= 1; ++gc) {
    for (uint32_t w : workers) {
      ExperimentConfig cfg;
      cfg.workload = base;
      cfg.workload.mpl = mpl;
      cfg.scenario = Scenario::kIRA;
      cfg.ira.num_workers = w;
      cfg.group_commit = gc != 0;
      cfg.ira.claim_wakeup = gc != 0;
      cfg.ira.adaptive_workers = gc != 0;
      ExperimentResult r = RunExperiment(cfg);
      PrintSeriesRow(gc, {static_cast<double>(w), r.reorg_duration_ms,
                          r.driver.throughput_tps(),
                          r.driver.response_ms.Percentile(0.99),
                          static_cast<double>(r.reorg.group_commit_batches),
                          static_cast<double>(r.reorg.forces_absorbed),
                          static_cast<double>(r.reorg.claim_wakeups),
                          static_cast<double>(r.reorg.workers_shed),
                          static_cast<double>(r.reorg.workers_added)});
      json.BeginRow();
      json.Add("group_commit", gc);
      json.Add("workers", w);
      json.Add("mpl", mpl);
      json.Add("reorg_ms", r.reorg_duration_ms);
      json.Add("user_tps", r.driver.throughput_tps());
      json.Add("user_p99_ms", r.driver.response_ms.Percentile(0.99));
      json.Add("user_art_ms", r.driver.response_ms.mean());
      json.Add("objects_migrated",
               static_cast<double>(r.reorg.objects_migrated));
      json.Add("group_commit_batches",
               static_cast<double>(r.reorg.group_commit_batches));
      json.Add("forces_absorbed",
               static_cast<double>(r.reorg.forces_absorbed));
      json.Add("claim_deferrals",
               static_cast<double>(r.reorg.claim_deferrals));
      json.Add("claim_wakeups", static_cast<double>(r.reorg.claim_wakeups));
      json.Add("workers_shed", static_cast<double>(r.reorg.workers_shed));
      json.Add("workers_added", static_cast<double>(r.reorg.workers_added));
      json.Add("lock_timeouts", static_cast<double>(r.reorg.lock_timeouts));
      json.Add("reorg_ok", r.reorg_status.ok() ? 1 : 0);
    }
  }
  if (!json.WriteFile("BENCH_group_commit.json")) {
    std::fprintf(stderr, "failed to write BENCH_group_commit.json\n");
    NoteFailure();
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
