// The trade-off that motivates the whole paper (Section 1): physical
// references give direct access but make reorganization hard; logical
// references make reorganization trivial (rebind one indirection-table
// entry) but pay an extra lookup on *every* access — "in a memory
// resident database, this increases the access path length to an object
// by a factor of two".
//
// Measures both sides: pointer-chase throughput through physical refs vs.
// through an OID map, and the cost of migrating a partition with IRA vs.
// rebinding logical ids.

#include <cstdio>

#include "bench/harness.h"
#include "storage/oid_map.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  DatabaseOptions dopt;
  dopt.num_data_partitions = 3;
  Database db(dopt);

  // A long chain of objects in partition 1, anchored from partition 2 so
  // the chain is live (ERT-reachable) for the reorganization.
  const int kChain = 50000;
  std::vector<ObjectId> chain;
  OidMap oid_map;
  std::vector<LogicalId> logical;
  {
    auto txn = db.Begin();
    for (int i = 0; i < kChain; ++i) {
      ObjectId oid;
      Status s = txn->CreateObject(1, 1, 16, &oid);
      if (!s.ok()) std::exit(1);
      chain.push_back(oid);
      logical.push_back(oid_map.Register(oid));
    }
    for (int i = 0; i + 1 < kChain; ++i) {
      txn->SetRef(chain[i], 0, chain[i + 1]);
    }
    ObjectId anchor;
    if (!txn->CreateObject(3, 1, 8, &anchor).ok()) std::exit(1);
    txn->SetRef(anchor, 0, chain[0]);
    txn->Commit();
  }
  db.analyzer().Sync();

  // Access path length: chase the chain by physical refs...
  const int kRounds = 40;
  uint64_t checksum = 0;
  Stopwatch sw_phys;
  for (int r = 0; r < kRounds; ++r) {
    ObjectId cur = chain[0];
    while (cur.valid()) {
      const ObjectHeader* h = db.store().Get(cur);
      checksum += h->data()[0];
      cur = h->refs()[0];
    }
  }
  double phys_ns = sw_phys.ElapsedMicros() * 1000.0 /
                   (static_cast<double>(kRounds) * kChain);

  // ... and by logical ids. A logical-reference system stores logical
  // ids *inside* the objects' reference slots; every hop dereferences the
  // stored logical id through the mapping table before reaching the next
  // object — "one extra level of indirection for every access". We build
  // a parallel chain whose slots carry the logical ids (smuggled through
  // the raw ObjectId bits; they are never used as addresses).
  std::vector<ObjectId> lchain;
  {
    auto txn = db.Begin(LogSource::kReorg);
    for (int i = 0; i < kChain; ++i) {
      ObjectId oid;
      if (!txn->CreateObject(2, 1, 16, &oid).ok()) std::exit(1);
      lchain.push_back(oid);
    }
    txn->Commit();
  }
  for (int i = 0; i + 1 < kChain; ++i) {
    // Store the *logical id* of the next object in the slot.
    db.store().Get(lchain[i])->refs()[0] = ObjectId::FromRaw(logical[i + 1]);
  }
  // Bind the logical ids to the parallel chain.
  for (int i = 0; i < kChain; ++i) oid_map.Rebind(logical[i], lchain[i]);

  Stopwatch sw_log;
  for (int r = 0; r < kRounds; ++r) {
    ObjectId cur = lchain[0];
    for (;;) {
      const ObjectHeader* h = db.store().Get(cur);
      checksum += h->data()[0];
      uint64_t next_logical = h->refs()[0].raw();
      if (next_logical == 0) break;
      if (!oid_map.Resolve(next_logical, &cur)) break;  // the indirection
    }
  }
  double log_ns = sw_log.ElapsedMicros() * 1000.0 /
                  (static_cast<double>(kRounds) * kChain);

  // Direct mapping (the best of the three OID-mapping techniques in
  // [EGK95]): the logical id indexes a flat table. This is the paper's
  // "increases the access path length ... by a factor of two" case.
  std::vector<ObjectId> direct_map(kChain + 1);
  for (int i = 0; i < kChain; ++i) direct_map[logical[i]] = lchain[i];
  Stopwatch sw_direct;
  for (int r = 0; r < kRounds; ++r) {
    ObjectId cur = lchain[0];
    for (;;) {
      const ObjectHeader* h = db.store().Get(cur);
      checksum += h->data()[0];
      uint64_t next_logical = h->refs()[0].raw();
      if (next_logical == 0 || next_logical >= direct_map.size()) break;
      cur = direct_map[next_logical];  // the extra dependent load
    }
  }
  double direct_ns = sw_direct.ElapsedMicros() * 1000.0 /
                     (static_cast<double>(kRounds) * kChain);
  // Restore the map bindings for the rebind measurement below.
  for (int i = 0; i < kChain; ++i) oid_map.Rebind(logical[i], chain[i]);

  std::printf("# Section 1 motivation — access path length\n");
  std::printf("physical refs     : %7.1f ns/hop\n", phys_ns);
  std::printf("logical (direct)  : %7.1f ns/hop  (%.2fx)\n", direct_ns,
              phys_ns > 0 ? direct_ns / phys_ns : 0.0);
  std::printf("logical (hash map): %7.1f ns/hop  (%.2fx)\n", log_ns,
              phys_ns > 0 ? log_ns / phys_ns : 0.0);

  // Reorganization cost: migrating with physical refs runs the full IRA
  // machinery (find parents, lock, rewrite); with logical refs it is one
  // rebind per object.
  std::printf("\n# reorganization cost for %d objects\n", kChain);
  Stopwatch sw_reb;
  for (int i = 0; i < kChain; ++i) {
    // A logical-reference system would memcpy the object and rebind:
    oid_map.Rebind(logical[i], ObjectId(2, 16 + 8 * (i % 1000)));
  }
  double rebind_ms = sw_reb.ElapsedMillis();
  for (int i = 0; i < kChain; ++i) oid_map.Rebind(logical[i], chain[i]);

  CopyOutPlanner planner(2);
  ReorgStats stats;
  Stopwatch sw_ira;
  Status s = db.RunIra(1, &planner, IraOptions{}, &stats);
  double ira_ms = sw_ira.ElapsedMillis();
  if (!s.ok()) std::exit(1);

  std::printf("logical  rebinds : %10.2f ms (no parent ever touched)\n",
              rebind_ms);
  std::printf("physical IRA     : %10.2f ms (%llu parents rewritten via "
              "%llu-object traversal)\n",
              ira_ms, static_cast<unsigned long long>(stats.objects_migrated),
              static_cast<unsigned long long>(stats.traversal_visited));
  std::printf("=> the paper's point: pay IRA rarely (reorganization) "
              "instead of the indirection on every access.\n");
  (void)checksum;
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
