// Durability substrate ablation (DESIGN.md §12): user throughput and
// reorg wall-clock with the WAL force backed by (0) the in-memory log
// paying the modelled kCommitForceLatency, (1) real WAL segment files
// with one fsync per commit force (group commit off — the classic
// one-I/O-per-commit discipline), and (2) the same disk log under group
// commit, where queued committers ride one elected flusher's fsync.
//
// Expected shape: the in-memory model and the disk log agree on the
// *structure* of the cost (forces serialize on one device), so group
// commit recovers most of the gap between (1) and (0) — the fsyncs
// column shows the batching directly: (2) pays roughly one fsync per
// batch instead of one per commit.
//
// Emits BENCH_durability.json in the working directory.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/file_util.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::vector<uint32_t> workers = {1, 2, 4};
  uint32_t mpl = 10;
  WorkloadParams base;
  if (SmokeMode()) {
    workers = {1, 2};
    mpl = 4;
    base.num_partitions = 3;
    base.objects_per_partition = 85 * 4;
  } else if (FullMode()) {
    workers = {1, 2, 4, 8};
    mpl = 30;
  }

  std::printf("# Durability substrate — in-memory model vs disk WAL "
              "(fsync per commit) vs disk WAL + group commit\n");
  PrintSeriesHeader("durability", {"workers", "reorg_ms", "user_tps",
                                   "fsyncs", "batches", "absorbed"});
  JsonBenchWriter json("durability");
  // 0 = in-memory + modelled force latency, 1 = disk + fsync per commit,
  // 2 = disk + group commit.
  for (int mode = 0; mode <= 2; ++mode) {
    for (uint32_t w : workers) {
      const std::string wal_dir =
          "./durability_wal_" + std::to_string(mode) + "_" +
          std::to_string(w);
      RemoveDirRecursive(wal_dir);
      ExperimentConfig cfg;
      cfg.workload = base;
      cfg.workload.mpl = mpl;
      cfg.scenario = Scenario::kIRA;
      cfg.ira.num_workers = w;
      if (mode == 0) {
        cfg.durability = Durability::kInMemory;
        cfg.group_commit = true;
      } else {
        cfg.durability = Durability::kDisk;
        cfg.wal_dir = wal_dir;
        cfg.fsync_mode = FsyncMode::kFull;
        cfg.group_commit = mode == 2;
        // The device provides the latency now; don't pay the model too.
        cfg.flush_latency = std::chrono::microseconds(0);
      }
      ExperimentResult r = RunExperiment(cfg);
      PrintSeriesRow(mode,
                     {static_cast<double>(w), r.reorg_duration_ms,
                      r.driver.throughput_tps(),
                      static_cast<double>(r.reorg.fsyncs),
                      static_cast<double>(r.reorg.group_commit_batches),
                      static_cast<double>(r.reorg.forces_absorbed)});
      json.BeginRow();
      json.Add("durability", mode);
      json.Add("workers", w);
      json.Add("mpl", mpl);
      json.Add("reorg_ms", r.reorg_duration_ms);
      json.Add("user_tps", r.driver.throughput_tps());
      json.Add("user_p99_ms", r.driver.response_ms.Percentile(0.99));
      json.Add("fsyncs", static_cast<double>(r.reorg.fsyncs));
      json.Add("group_commit_batches",
               static_cast<double>(r.reorg.group_commit_batches));
      json.Add("forces_absorbed",
               static_cast<double>(r.reorg.forces_absorbed));
      json.Add("wal_records_verified",
               static_cast<double>(r.reorg.wal_records_verified));
      json.Add("reorg_ok", r.reorg_status.ok() ? 1 : 0);
      RemoveDirRecursive(wal_dir);
    }
  }
  if (!json.WriteFile("BENCH_durability.json")) {
    std::fprintf(stderr, "failed to write BENCH_durability.json\n");
    NoteFailure();
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
