// Epoch-protected latch-free reads (DESIGN.md §11): read-only user
// transactions vs a concurrent IRA reorganization, locked baseline
// against the zero-lock snapshot path, swept over reorg worker counts.
//
// The locked baseline reproduces the reader-vs-migration stall this PR
// removes: every read step queues in the lock manager, so each
// additional migration worker means more exclusive locks for readers to
// collide with — reader throughput sags and p99 stretches as workers
// grow. With latchfree_reads on, readers never touch the lock manager:
// they pin an epoch, chase the relocation table past in-flight
// migrations, and snapshot under the per-object latch only, so reader
// throughput holds (or improves, as the reorganization gets out of the
// way sooner) from 1 through 8 workers.
//
// Emits BENCH_latchfree_reads.json in the working directory.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::vector<uint32_t> workers = {1, 2, 8};
  uint32_t mpl = 8;
  // Fixed measurement window containing one complete reorganization: the
  // sweep variable (workers) must not change the window's composition,
  // or user-side tps compares a mostly-quiet long run against a
  // saturated short one. Sized just above the slowest (1-worker) reorg —
  // a tighter window keeps the reorg-active fraction (where worker count
  // matters) from being diluted by identical quiet time.
  double window_s = 8.5;
  WorkloadParams base;
  base.update_prob = 0.0;  // pure readers: the path under test
  if (SmokeMode()) {
    workers = {1, 4};
    mpl = 4;
    base.num_partitions = 3;
    base.objects_per_partition = 85 * 4;
    window_s = 2.0;
  } else if (FullMode()) {
    workers = {1, 2, 4, 8, 16};
    mpl = 30;
    window_s = 30.0;
  }

  std::printf("# Latch-free reads — reader tps/p99 vs reorg workers, "
              "locked baseline vs epoch-protected zero-lock path\n");
  PrintSeriesHeader("latchfree",
                    {"workers", "read_tps", "read_p99_ms", "reorg_ms",
                     "lf_reads", "epoch_advances", "retire_drains"});
  JsonBenchWriter json("latchfree_reads");
  // mode 0 = locked baseline (readers queue behind migrations),
  // mode 1 = epoch-protected latch-free read path.
  const int trials = SmokeMode() ? 1 : 5;
  std::vector<std::pair<int, uint32_t>> configs;
  for (int lf = 0; lf <= 1; ++lf)
    for (uint32_t w : workers) configs.emplace_back(lf, w);
  // Best of N trials, interleaved round-robin across configurations: on
  // a time-shared box scheduler interference only subtracts throughput,
  // so the max is the least-biased estimate of a configuration's true
  // capacity, and interleaving keeps one noisy stretch of wall-clock
  // from contaminating every trial of a single configuration.
  std::vector<std::vector<ExperimentResult>> runs(configs.size());
  for (int t = 0; t < trials; ++t) {
    for (size_t c = 0; c < configs.size(); ++c) {
      ExperimentConfig cfg;
      cfg.workload = base;
      cfg.workload.mpl = mpl;
      cfg.scenario = Scenario::kIRA;
      cfg.min_duration_s = window_s;
      cfg.ira.num_workers = configs[c].second;
      cfg.latchfree_reads = configs[c].first != 0;
      runs[c].push_back(RunExperiment(cfg));
    }
  }
  for (size_t c = 0; c < configs.size(); ++c) {
    const int lf = configs[c].first;
    const uint32_t w = configs[c].second;
    {
      ExperimentResult& r = *std::max_element(
          runs[c].begin(), runs[c].end(),
          [](const ExperimentResult& a, const ExperimentResult& b) {
            return a.driver.throughput_tps() < b.driver.throughput_tps();
          });
      PrintSeriesRow(lf, {static_cast<double>(w), r.driver.throughput_tps(),
                          r.driver.response_ms.Percentile(0.99),
                          r.reorg_duration_ms,
                          static_cast<double>(r.reorg.latchfree_reads),
                          static_cast<double>(r.reorg.epoch_advances),
                          static_cast<double>(r.reorg.retire_drains)});
      json.BeginRow();
      json.Add("latchfree", lf);
      json.Add("workers", w);
      json.Add("mpl", mpl);
      json.Add("read_tps", r.driver.throughput_tps());
      json.Add("read_p99_ms", r.driver.response_ms.Percentile(0.99));
      json.Add("read_art_ms", r.driver.response_ms.mean());
      json.Add("reorg_ms", r.reorg_duration_ms);
      json.Add("objects_migrated",
               static_cast<double>(r.reorg.objects_migrated));
      json.Add("latchfree_reads",
               static_cast<double>(r.reorg.latchfree_reads));
      json.Add("epoch_advances",
               static_cast<double>(r.reorg.epoch_advances));
      json.Add("retire_drains", static_cast<double>(r.reorg.retire_drains));
      json.Add("lock_timeouts", static_cast<double>(r.reorg.lock_timeouts));
      json.Add("reorg_ok", r.reorg_status.ok() ? 1 : 0);
    }
  }
  if (!json.WriteFile("BENCH_latchfree_reads.json")) {
    std::fprintf(stderr, "failed to write BENCH_latchfree_reads.json\n");
    NoteFailure();
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
