// Ablations over the design choices DESIGN.md calls out:
//   1. Basic IRA vs. the Section 4.2 two-lock extension: lock footprint
//      vs. reorganization duration.
//   2. Section 4.3 migration grouping: migrations per transaction vs.
//      reorganization duration, log volume, and workload impact.
//   3. Section 4.5 TRT purge on/off: peak TRT size and drain work.
//
// Expected: two-lock caps the lock footprint at 2 at the cost of a longer
// reorganization; grouping shortens the reorganization (fewer commits /
// log forces) but holds more locks at once; the purge keeps the TRT small
// under an update-heavy workload.

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

ExperimentResult RunIraVariant(const IraOptions& ira, double mutation) {
  ExperimentConfig cfg;
  cfg.scenario = Scenario::kIRA;
  cfg.ira = ira;
  cfg.workload.mpl = 10;
  cfg.workload.ref_mutation_prob = mutation;
  return RunExperiment(cfg);
}

void Run() {
  std::printf("# Ablation 1 — basic vs. two-lock (Section 4.2)\n");
  std::printf("%-10s %16s %16s %14s %14s %14s\n", "variant",
              "reorg_ms", "max_locks", "timeouts", "wl_tps", "wl_art_ms");
  for (bool two_lock : {false, true}) {
    IraOptions opt;
    opt.two_lock_mode = two_lock;
    ExperimentResult r = RunIraVariant(opt, 0.2);
    std::printf("%-10s %16.1f %16llu %14llu %14.1f %14.2f\n",
                two_lock ? "two-lock" : "basic", r.reorg.duration_ms,
                static_cast<unsigned long long>(
                    r.reorg.max_distinct_objects_locked),
                static_cast<unsigned long long>(r.reorg.lock_timeouts),
                r.driver.throughput_tps(), r.driver.response_ms.mean());
  }

  std::printf("\n# Ablation 2 — migration grouping (Section 4.3)\n");
  std::printf("%-10s %16s %16s %14s %14s\n", "group", "reorg_ms",
              "max_locks", "wl_tps", "wl_art_ms");
  for (uint32_t group : {1u, 8u, 32u, 128u}) {
    IraOptions opt;
    opt.group_size = group;
    ExperimentResult r = RunIraVariant(opt, 0.2);
    std::printf("%-10u %16.1f %16llu %14.1f %14.2f\n", group,
                r.reorg.duration_ms,
                static_cast<unsigned long long>(
                    r.reorg.max_distinct_objects_locked),
                r.driver.throughput_tps(), r.driver.response_ms.mean());
  }

  std::printf("\n# Ablation 3 — TRT purge (Section 4.5), update-heavy\n");
  std::printf("%-10s %16s %16s %16s\n", "purge", "trt_peak", "drained",
              "reorg_ms");
  for (bool purge : {true, false}) {
    IraOptions opt;
    opt.disable_trt_purge = !purge;
    ExperimentResult r = RunIraVariant(opt, 0.8);
    std::printf("%-10s %16llu %16llu %16.1f\n", purge ? "on" : "off",
                static_cast<unsigned long long>(r.reorg.trt_peak_size),
                static_cast<unsigned long long>(r.reorg.trt_tuples_drained),
                r.reorg.duration_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
