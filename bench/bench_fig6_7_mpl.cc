// Reproduces paper Figures 6 and 7 (Section 5.3.1): throughput and
// average response time of NR / IRA / PQR as the multiprogramming level
// is varied, with all other parameters at the Table 1 defaults.
//
// Expected shape (paper): NR best; IRA within a few percent of NR across
// all MPLs; PQR significantly lower. NR/IRA throughput peaks at a low MPL
// (CPU saturates; only commit-time log forces leave room for overlap);
// PQR peaks much later because it serializes the system behind its locks.

#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::vector<uint32_t> mpls = {1, 5, 10, 20, 30};
  if (FullMode()) mpls = {1, 5, 10, 20, 30, 45, 60};

  std::printf("# Figure 6 (throughput, tps) and Figure 7 (avg response "
              "time, ms) — MPL scaleup\n");
  PrintSeriesHeader("mpl", {"nr_tps", "ira_tps", "pqr_tps", "nr_art_ms",
                            "ira_art_ms", "pqr_art_ms"});
  for (uint32_t mpl : mpls) {
    double tput[3], art[3];
    for (Scenario sc : {Scenario::kNR, Scenario::kIRA, Scenario::kPQR}) {
      ExperimentConfig cfg;
      cfg.workload.mpl = mpl;
      cfg.scenario = sc;
      ExperimentResult r = RunExperiment(cfg);
      tput[static_cast<int>(sc)] = r.driver.throughput_tps();
      art[static_cast<int>(sc)] = r.driver.response_ms.mean();
    }
    PrintSeriesRow(mpl, {tput[0], tput[1], tput[2], art[0], art[1], art[2]});
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
