// Reproduces paper Table 2 (Section 5.3.1): response-time analysis at
// MPL 30 — throughput, average / maximum / standard deviation of the
// response times for NR, IRA and PQR.
//
// Expected shape (paper): NR and IRA have nearly identical maxima and
// standard deviations ("concurrent transactions in effect do not see the
// utility"); PQR's maximum and standard deviation are orders of magnitude
// higher — its max response time approaches the whole reorganization
// duration (100 s in the paper at their scale).

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::printf("# Table 2 — response time analysis at MPL %d\n", 30);
  PrintResponseAnalysisHeader();
  double reorg_ms[3] = {0, 0, 0};
  double top10[3] = {0, 0, 0};
  for (Scenario sc : {Scenario::kNR, Scenario::kIRA, Scenario::kPQR}) {
    ExperimentConfig cfg;
    cfg.workload.mpl = 30;
    cfg.scenario = sc;
    if (sc == Scenario::kNR) cfg.nr_duration_s = FullMode() ? 10.0 : 3.0;
    ExperimentResult r = RunExperiment(cfg);
    PrintResponseAnalysisRow(ScenarioName(sc), r.driver);
    reorg_ms[static_cast<int>(sc)] = r.reorg_duration_ms;
    top10[static_cast<int>(sc)] = r.driver.response_ms.MeanOfTop(10);
  }
  std::printf("# reorg duration: IRA %.0f ms, PQR %.0f ms (IRA takes "
              "longer, as in the paper)\n",
              reorg_ms[1], reorg_ms[2]);
  std::printf("# mean of top-10 response times: NR %.1f ms, IRA %.1f ms, "
              "PQR %.1f ms\n",
              top10[0], top10[1], top10[2]);
  std::printf("# the paper's structural claim: PQR's worst responses track "
              "its whole reorganization duration; IRA's track a few lock "
              "timeouts.\n");
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
