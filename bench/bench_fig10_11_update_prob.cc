// Reproduces paper Figures 10 and 11 (Section 5.3.3): throughput and
// average response time as the update probability is varied.
//
// Expected shape (paper): higher update probability hurts NR and IRA
// (more exclusive locks, more log volume) relatively more than PQR, whose
// data contention is already severe at low update probabilities — but PQR
// remains worst across the whole range.

#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  std::vector<double> probs = {0.1, 0.3, 0.5, 0.7, 0.9};
  if (FullMode()) probs = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                           0.9, 1.0};

  std::printf("# Figure 10 (throughput, tps) and Figure 11 (avg response "
              "time, ms) — update probability sweep\n");
  PrintSeriesHeader("update_prob", {"nr_tps", "ira_tps", "pqr_tps",
                                    "nr_art_ms", "ira_art_ms", "pqr_art_ms"});
  for (double p : probs) {
    double tput[3], art[3];
    for (Scenario sc : {Scenario::kNR, Scenario::kIRA, Scenario::kPQR}) {
      ExperimentConfig cfg;
      cfg.workload.update_prob = p;
      cfg.scenario = sc;
      ExperimentResult r = RunExperiment(cfg);
      tput[static_cast<int>(sc)] = r.driver.throughput_tps();
      art[static_cast<int>(sc)] = r.driver.response_ms.mean();
    }
    PrintSeriesRow(p, {tput[0], tput[1], tput[2], art[0], art[1], art[2]});
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
