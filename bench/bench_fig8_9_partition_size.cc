// Reproduces paper Figures 8 and 9 (Section 5.3.2): throughput and
// average response time as the number of objects in the reorganized
// partition grows (all else at Table 1 defaults).
//
// Expected shape (paper): NR and IRA throughput stay flat as the
// partition grows; PQR throughput falls steadily and its response time
// rises sharply, because it blocks transactions for the (longer) duration
// of the whole reorganization.

#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

void Run() {
  // Paper sweep: 1020 .. 8160 objects (85-object clusters).
  std::vector<uint32_t> sizes = {1020, 2040, 4080, 8160};
  if (FullMode()) sizes = {1020, 2040, 4080, 6120, 8160};

  std::printf("# Figure 8 (throughput, tps) and Figure 9 (avg response "
              "time, ms) — partition size scaleup\n");
  PrintSeriesHeader("num_objs", {"nr_tps", "ira_tps", "pqr_tps", "nr_art_ms",
                                 "ira_art_ms", "pqr_art_ms"});
  for (uint32_t n : sizes) {
    double tput[3], art[3];
    for (Scenario sc : {Scenario::kNR, Scenario::kIRA, Scenario::kPQR}) {
      ExperimentConfig cfg;
      cfg.workload.objects_per_partition = n;
      cfg.scenario = sc;
      ExperimentResult r = RunExperiment(cfg);
      tput[static_cast<int>(sc)] = r.driver.throughput_tps();
      art[static_cast<int>(sc)] = r.driver.response_ms.mean();
    }
    PrintSeriesRow(n, {tput[0], tput[1], tput[2], art[0], art[1], art[2]});
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
