// Deadlock handling ablation: timeout-only (the paper's 1 s-timeout
// baseline) vs waits-for graph detection with reorg-first victim
// selection vs wait-die, on a contended Fig-6 style workload with a
// 4-worker parallel IRA in flight.
//
// Expected shape: under timeout-only, every user/reorg cycle parks both
// parties for the full lock timeout before one aborts, so contended user
// p99 sits near (timeout + transaction time). Graph detection notices the
// cycle within the detection grace, sacrifices the reorg side (users are
// never victims while a reorg transaction is in the cycle), and the user
// transaction proceeds after milliseconds instead of the full timeout —
// victim_wait_ms_saved tallies exactly the parked time detection
// reclaimed. Wait-die also resolves early but victimizes by age alone, so
// it aborts user transactions too and restarts more work than it saves.
//
// Emits BENCH_deadlock.json in the working directory.

#include <string>
#include <vector>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

const char* PolicyName(DeadlockPolicy p) {
  switch (p) {
    case DeadlockPolicy::kTimeoutOnly: return "timeout_only";
    case DeadlockPolicy::kDetect: return "detect";
    case DeadlockPolicy::kWaitDie: return "wait_die";
  }
  return "?";
}

void Run() {
  std::vector<uint32_t> mpls = {4, 10, 20};
  uint32_t workers = 4;
  WorkloadParams base;
  // Contended variant of the Table 1 workload: fewer, smaller partitions
  // and a high update mix concentrate the random walks on the partition
  // being reorganized, so user transactions and migration workers
  // actually collide and form cycles.
  base.num_partitions = 4;
  base.objects_per_partition = 85 * 8;
  base.update_prob = 0.8;
  base.ref_mutation_prob = 0.3;
  if (SmokeMode()) {
    mpls = {4};
    workers = 2;
    base.num_partitions = 3;
    base.objects_per_partition = 85 * 4;
  } else if (FullMode()) {
    mpls = {10, 20, 30};
    base.objects_per_partition = 85 * 12;
  }

  const std::vector<DeadlockPolicy> policies = {DeadlockPolicy::kTimeoutOnly,
                                                DeadlockPolicy::kDetect,
                                                DeadlockPolicy::kWaitDie};

  std::printf("# Deadlock ablation — user p99 and reorg wall-clock, "
              "timeout-only vs waits-for detection vs wait-die\n");
  PrintSeriesHeader("mode", {"mpl", "reorg_ms", "user_tps", "user_p99_ms",
                             "detected", "victims", "saved_ms",
                             "lock_timeouts"});
  JsonBenchWriter json("deadlock");
  // mode 0 = timeout-only, 1 = waits-for detection, 2 = wait-die.
  for (size_t mode = 0; mode < policies.size(); ++mode) {
    for (uint32_t mpl : mpls) {
      ExperimentConfig cfg;
      cfg.workload = base;
      cfg.workload.mpl = mpl;
      cfg.scenario = Scenario::kIRA;
      cfg.ira.num_workers = workers;
      cfg.deadlock_policy = policies[mode];
      ExperimentResult r = RunExperiment(cfg);
      PrintSeriesRow(static_cast<double>(mode),
                     {static_cast<double>(mpl), r.reorg_duration_ms,
                      r.driver.throughput_tps(),
                      r.driver.response_ms.Percentile(0.99),
                      static_cast<double>(r.reorg.deadlocks_detected),
                      static_cast<double>(r.reorg.victims_aborted),
                      static_cast<double>(r.reorg.victim_wait_ms_saved),
                      static_cast<double>(r.reorg.lock_timeouts)});
      std::printf("#   policy=%s\n", PolicyName(policies[mode]));
      json.BeginRow();
      json.Add("mode", static_cast<double>(mode));
      json.Add("mpl", mpl);
      json.Add("workers", workers);
      json.Add("reorg_ms", r.reorg_duration_ms);
      json.Add("user_tps", r.driver.throughput_tps());
      json.Add("user_p99_ms", r.driver.response_ms.Percentile(0.99));
      json.Add("user_art_ms", r.driver.response_ms.mean());
      json.Add("user_timeout_aborts",
               static_cast<double>(r.driver.timeout_aborts));
      json.Add("user_other_aborts",
               static_cast<double>(r.driver.other_aborts));
      json.Add("deadlocks_detected",
               static_cast<double>(r.reorg.deadlocks_detected));
      json.Add("victims_aborted",
               static_cast<double>(r.reorg.victims_aborted));
      json.Add("victim_wait_ms_saved",
               static_cast<double>(r.reorg.victim_wait_ms_saved));
      json.Add("lock_timeouts", static_cast<double>(r.reorg.lock_timeouts));
      json.Add("objects_migrated",
               static_cast<double>(r.reorg.objects_migrated));
      json.Add("reorg_ok", r.reorg_status.ok() ? 1 : 0);
    }
  }
  if (!json.WriteFile("BENCH_deadlock.json")) {
    std::fprintf(stderr, "failed to write BENCH_deadlock.json\n");
    NoteFailure();
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
