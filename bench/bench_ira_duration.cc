// Reproduces the final experiment of Section 5.3.4: PQR quiesces hard but
// finishes sooner; IRA is gentle but runs longer. If PQR's throughput is
// measured over the *duration of IRA* (so the post-reorganization period,
// when PQR has returned to NR-level throughput, counts in its favour),
// how much does IRA lose? The paper: the difference never exceeded ~3%.

#include <atomic>
#include <thread>

#include "bench/harness.h"

namespace brahma {
namespace bench {
namespace {

// Runs `scenario` but measures the driver for exactly measure_s seconds
// (reorg may finish earlier; the workload keeps running at full speed).
ExperimentResult RunForDuration(Scenario scenario, double measure_s,
                                double* reorg_ms_out) {
  ExperimentConfig cfg;
  cfg.scenario = scenario;

  DatabaseOptions dopt;
  dopt.num_data_partitions = cfg.workload.num_partitions + 1;
  dopt.partition_capacity = 8ull << 20;
  dopt.commit_flush_latency = cfg.flush_latency;
  dopt.lock_timeout = cfg.lock_timeout;
  Database db(dopt);
  BuiltGraph graph;
  GraphBuilder builder(&db);
  Status s = builder.Build(cfg.workload, &graph);
  if (!s.ok()) std::exit(1);

  ExperimentResult result;
  std::atomic<bool> stop{false};
  std::thread timer([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(measure_s * 1e3)));
    stop.store(true);
  });
  std::thread reorg([&]() {
    if (scenario == Scenario::kNR) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(cfg.warmup_s * 1e3)));
    CopyOutPlanner planner(
        static_cast<PartitionId>(cfg.workload.num_partitions + 1));
    Stopwatch sw;
    if (scenario == Scenario::kIRA) {
      IraReorganizer ira(db.reorg_context());
      result.reorg_status =
          ira.Run(cfg.reorg_partition, &planner, cfg.ira, &result.reorg);
    } else {
      PqrReorganizer pqr(db.reorg_context());
      result.reorg_status =
          pqr.Run(cfg.reorg_partition, &planner, cfg.pqr, &result.reorg);
    }
    result.reorg_duration_ms = sw.ElapsedMillis();
    if (reorg_ms_out != nullptr) *reorg_ms_out = result.reorg_duration_ms;
  });
  WorkloadDriver driver(&db, cfg.workload, graph);
  result.driver = driver.Run([&stop]() { return stop.load(); }, 0);
  timer.join();
  reorg.join();
  return result;
}

void Run() {
  std::printf(
      "# Section 5.3.4 — PQR measured over the duration of IRA\n"
      "# (paper: throughput difference between IRA and PQR never "
      "exceeded ~3%% under this accounting)\n");
  // Pass 1: how long does IRA take (plus warmup)?
  double ira_ms = 0;
  ExperimentResult ira = RunForDuration(Scenario::kIRA, 0.5, &ira_ms);
  // Re-run both, measured over the IRA window.
  double window_s = 0.15 /*warmup*/ + ira_ms / 1e3 + 0.05;
  ExperimentResult ira2 = RunForDuration(Scenario::kIRA, window_s, nullptr);
  ExperimentResult pqr = RunForDuration(Scenario::kPQR, window_s, nullptr);

  std::printf("ira_reorg_duration_ms %.1f  measurement_window_s %.2f\n",
              ira_ms, window_s);
  PrintResponseAnalysisHeader();
  PrintResponseAnalysisRow("IRA", ira2.driver);
  PrintResponseAnalysisRow("PQR", pqr.driver);
  double diff = 0;
  if (ira2.driver.throughput_tps() > 0) {
    diff = 100.0 *
           (ira2.driver.throughput_tps() - pqr.driver.throughput_tps()) /
           ira2.driver.throughput_tps();
  }
  std::printf("throughput difference over IRA window: %.1f%%\n", diff);
  (void)ira;
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when any experiment's reorganization failed or a JSON
  // artifact could not be written: CI must fail the step instead of
  // validating zeroed stats.
  return brahma::bench::ExitCode();
}
