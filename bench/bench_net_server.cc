// Networked server under a multi-process client swarm (DESIGN.md §14):
// user-facing tail latency before / during / after an on-line
// reorganization, with the ReorgThrottle off vs on.
//
// The bench hosts the Database + NetServer in-process, forks
// `procs` swarm_client processes (examples/swarm_client.cpp) that
// together ramp `connections` concurrent connections of closed-loop
// traverse transactions, then runs a parallel IRA against partition 1
// while the swarm hammers the same objects. Each child logs every
// committed user transaction as `<CLOCK_REALTIME us> <latency us>`;
// the parent stamps the reorganization window against the same clock
// and splits the merged samples into the three phases.
//
// Round 1 runs unthrottled to expose the damage and calibrate an SLO
// between the quiet p99 and the unthrottled during-reorg p99. Round 2
// reruns with a ReorgThrottle holding that SLO wired into both the
// server (latency feed) and the IRA (worker cap): the throttle must
// shed migration workers until the during-reorg p99 drops back inside
// the SLO that the unthrottled run exceeded.
//
// One extra victim child is kill -9'd mid-reorganization: the server
// must keep serving every other connection (no process death, no
// leaked sessions) — the swarm-scale version of the SIGPIPE
// regression test.
//
// Emits BENCH_net_server.json in the working directory.

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/reorg_throttle.h"
#include "net/client.h"
#include "net/server.h"

namespace brahma {
namespace bench {
namespace {

int64_t RealUs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return ts.tv_sec * 1000000LL + ts.tv_nsec / 1000;
}

std::string FindSwarmClient() {
  const char* env = std::getenv("BRAHMA_SWARM_CLIENT");
  if (env != nullptr && ::access(env, X_OK) == 0) return env;
  const char* candidates[] = {
      "./examples/swarm_client", "../examples/swarm_client",
      "examples/swarm_client", "./swarm_client",
      "./build/examples/swarm_client"};
  for (const char* c : candidates) {
    if (::access(c, X_OK) == 0) return c;
  }
  return "";
}

struct SwarmConfig {
  uint32_t connections = 1000;
  uint32_t procs = 8;
  double before_s = 3.0;   // quiet window measured ahead of the reorg
  double after_s = 2.0;    // quiet window measured after it
  double settle_s = 3.0;   // connection ramp excluded from "before"
  uint32_t steps = 8;
  uint32_t update_permille = 500;
  uint32_t ref_mut_permille = 200;
  // Mean exponential think time per connection — open-loop-ish load.
  // Two constraints: a saturated closed loop turns p99 into pure
  // queueing noise (drowning the reorg signal the SLO governor needs),
  // while an offered load far below the *during-reorg* capacity never
  // gets hurt by the reorganizer at all. 50 ms puts the swarm at ~75%
  // of quiet capacity and ~120% of unthrottled during-reorg capacity:
  // quiet tails stay low, and an unthrottled reorganizer makes queues
  // genuinely explode.
  double think_ms = 50.0;
  uint32_t server_workers = 4;
  // More migration threads than cores: the damage the throttle exists to
  // contain is CPU steal + lock contention from an over-eager
  // reorganizer, which a worker count above the core count guarantees.
  uint32_t ira_workers = 8;
  // One copy-out pass over a paper-sized partition is only ~300 ms of
  // migration here — shorter than a meaningful latency-control horizon —
  // so the bench ping-pongs the partition between its home and the spare
  // and measures the whole multi-pass window as "during".
  uint32_t reorg_passes = 6;
};

struct PhaseStats {
  SampleStats latency_ms;
  double duration_s = 0;
  double tps() const {
    return duration_s > 0
               ? static_cast<double>(latency_ms.count()) / duration_s
               : 0;
  }
};

struct RoundResult {
  PhaseStats before, during, after;
  double reorg_ms = 0;
  bool reorg_ok = false;
  uint64_t objects_migrated = 0;
  uint64_t sheds = 0;
  uint64_t boosts = 0;
  uint32_t final_cap = 0;
  uint64_t sessions_accepted = 0;
  uint64_t sessions_after_kill = 0;
  uint64_t requests_served = 0;
  uint64_t sessions_dropped = 0;
  bool victim_killed = false;
  bool server_alive_after = false;
};

pid_t SpawnChild(const std::string& exe, uint16_t port,
                 const SwarmConfig& cfg, uint32_t conns, uint64_t seed,
                 uint32_t partitions, const std::string& out) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  // Children outlive any single phase; the parent stops them with
  // SIGTERM (graceful flush) or SIGKILL (the victim).
  char port_s[16], conns_s[16], dur_s[16], steps_s[16], upd_s[16],
      ref_s[16], seed_s[32], parts_s[16], think_s[24];
  snprintf(port_s, sizeof(port_s), "%u", port);
  snprintf(conns_s, sizeof(conns_s), "%u", conns);
  snprintf(dur_s, sizeof(dur_s), "%d", 3600);
  snprintf(steps_s, sizeof(steps_s), "%u", cfg.steps);
  snprintf(upd_s, sizeof(upd_s), "%u", cfg.update_permille);
  snprintf(ref_s, sizeof(ref_s), "%u", cfg.ref_mut_permille);
  snprintf(seed_s, sizeof(seed_s), "%llu",
           static_cast<unsigned long long>(seed));
  snprintf(parts_s, sizeof(parts_s), "%u", partitions);
  snprintf(think_s, sizeof(think_s), "%.3f", cfg.think_ms);
  execl(exe.c_str(), exe.c_str(), "--port", port_s, "--connections",
        conns_s, "--duration-s", dur_s, "--steps", steps_s,
        "--update-permille", upd_s, "--ref-mut-permille", ref_s, "--seed",
        seed_s, "--partitions", parts_s, "--think-ms", think_s, "--out",
        out.c_str(), static_cast<char*>(nullptr));
  perror("execl swarm_client");
  _exit(127);
}

void LoadSamples(const std::string& path, int64_t lo_us, int64_t hi_us,
                 PhaseStats* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return;
  char line[128];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#') continue;
    long long t_us = 0, lat_us = 0;
    if (std::sscanf(line, "%lld %lld", &t_us, &lat_us) != 2) continue;
    if (t_us >= lo_us && t_us < hi_us) {
      out->latency_ms.Add(static_cast<double>(lat_us) / 1000.0);
    }
  }
  std::fclose(f);
}

// One full swarm-vs-reorg round. slo_ms <= 0 runs unthrottled.
RoundResult RunRound(const SwarmConfig& cfg, const WorkloadParams& base,
                     double slo_ms, const std::string& tag) {
  RoundResult out;

  DatabaseOptions dopt;
  dopt.num_data_partitions = base.num_partitions + 1;
  dopt.partition_capacity = std::max<uint64_t>(
      8ull << 20, base.objects_per_partition * 512ull);
  dopt.lock_timeout = std::chrono::milliseconds(200);
  // Frequent small WAL truncations: at the swarm's record rate a 500k
  // threshold compacts ~once per run in a single ~200 ms stall that
  // lands as an unthrottleable spike in whatever phase it hits.
  dopt.log_truncate_threshold = 100000;
  Database db(dopt);
  BuiltGraph graph;
  GraphBuilder builder(&db);
  Status s = builder.Build(base, &graph);
  if (!s.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n", s.ToString().c_str());
    NoteFailure();
    return out;
  }

  ReorgThrottleOptions topt;
  topt.slo_p99_ms = slo_ms;
  // Scale the measurement to the sample rate: at ~15k user ops/s a
  // 64-sample eval cadence fires every ~4 ms — faster than a cap change
  // can even reach the window — and the controller thrashes. 8k/1k
  // gives a ~0.5 s window and ~70 ms between control decisions.
  topt.window = 8192;
  topt.eval_every = 1024;
  // Regulate below the SLO with slow boosts: the phase-aggregate p99
  // must land under the limit, not ride it, and each premature boost
  // sprays a latency burst into the measurement.
  topt.setpoint_fraction = 0.6;
  topt.boost_hold = 4;
  // Slow-start at one worker: the default optimistic attach runs the
  // pipeline at full width until the first sheds land, which costs one
  // full-damage burst inside the measured window.
  topt.initial_workers = 1;
  // Pace mode: on one CPU even a single migration worker keeps user p99
  // pinned above any SLO between the quiet and damaged tails, so the
  // governor must be allowed to park the whole pipeline and duty-cycle.
  topt.min_workers = 0;
  ReorgThrottle throttle(topt);
  const bool throttled = slo_ms > 0;

  net::ServerOptions sopt;
  sopt.num_workers = cfg.server_workers;
  sopt.graph = &graph;
  sopt.workload = base;
  sopt.throttle = throttled ? &throttle : nullptr;
  net::NetServer server(&db, sopt);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    NoteFailure();
    return out;
  }

  const std::string exe = FindSwarmClient();
  if (exe.empty()) {
    std::fprintf(stderr,
                 "swarm_client binary not found (set BRAHMA_SWARM_CLIENT)\n");
    NoteFailure();
    server.Stop();
    return out;
  }

  // Fork the swarm: `procs` measured children splitting the connection
  // count, plus one victim to be kill -9'd mid-reorg.
  std::vector<pid_t> children;
  std::vector<std::string> sample_files;
  const uint32_t per_proc = std::max(1u, cfg.connections / cfg.procs);
  for (uint32_t p = 0; p < cfg.procs; ++p) {
    std::string outfile = "swarm_" + tag + "_" + std::to_string(p) +
                          ".samples";
    sample_files.push_back(outfile);
    children.push_back(SpawnChild(exe, server.port(), cfg, per_proc,
                                  10007 * (p + 1), base.num_partitions,
                                  outfile));
  }
  const std::string victim_file = "swarm_" + tag + "_victim.samples";
  pid_t victim = SpawnChild(exe, server.port(), cfg,
                            std::max(4u, per_proc / 4), 777,
                            base.num_partitions, victim_file);

  // Quiet window (connection ramp excluded from measurement).
  std::this_thread::sleep_for(
      std::chrono::duration<double>(cfg.settle_s + cfg.before_s));

  // Reorganize partition 1 into the spare while the swarm runs.
  const int64_t reorg_start_us = RealUs();
  IraOptions iopt;
  iopt.num_workers = cfg.ira_workers;
  iopt.lock_timeout = std::chrono::milliseconds(200);
  if (throttled) iopt.throttle = &throttle;
  IraReorganizer ira(db.reorg_context());
  Stopwatch sw;
  std::thread killer([&] {
    // kill -9 the victim child mid-reorganization: its connections drop
    // with unread server replies in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    kill(victim, SIGKILL);
  });
  const PartitionId home = 1;
  const PartitionId spare =
      static_cast<PartitionId>(base.num_partitions + 1);
  Status reorg_status;
  for (uint32_t pass = 0; pass < cfg.reorg_passes && reorg_status.ok();
       ++pass) {
    const bool out_pass = (pass % 2 == 0);
    CopyOutPlanner planner(out_pass ? spare : home);
    ReorgStats pass_stats;
    reorg_status =
        ira.Run(out_pass ? home : spare, &planner, iopt, &pass_stats);
    out.objects_migrated += pass_stats.objects_migrated;
  }
  killer.join();
  out.reorg_ms = sw.ElapsedMillis();
  const int64_t reorg_end_us = RealUs();
  out.reorg_ok = reorg_status.ok();
  if (!reorg_status.ok()) {
    std::fprintf(stderr, "reorg failed: %s\n",
                 reorg_status.ToString().c_str());
    NoteFailure();
  }
  out.victim_killed = true;
  int victim_status = 0;
  waitpid(victim, &victim_status, 0);

  // Quiet tail, then stop the measured children gracefully.
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.after_s));
  const int64_t end_us = RealUs();
  for (pid_t pid : children) kill(pid, SIGTERM);
  for (pid_t pid : children) {
    int st = 0;
    waitpid(pid, &st, 0);
    if (!WIFEXITED(st) || WEXITSTATUS(st) != 0) {
      std::fprintf(stderr, "swarm child %d exited abnormally\n",
                   static_cast<int>(pid));
      NoteFailure();
    }
  }

  // The server must have outlived the kill -9: still answering, no
  // leaked sessions beyond the (now gone) swarm's.
  {
    net::NetClient probe;
    out.server_alive_after =
        probe.Connect("127.0.0.1", server.port()).ok() && probe.Ping().ok();
  }
  out.sessions_accepted = server.sessions_accepted();
  out.sessions_after_kill = server.active_sessions();
  out.requests_served = server.requests_served();
  out.sessions_dropped = server.sessions_dropped();
  out.sheds = throttle.sheds();
  out.boosts = throttle.boosts();
  out.final_cap = throttled ? throttle.current_cap() : 0;
  server.Stop();

  const int64_t before_lo = reorg_start_us -
      static_cast<int64_t>(cfg.before_s * 1e6);
  out.before.duration_s = cfg.before_s;
  out.during.duration_s = (reorg_end_us - reorg_start_us) / 1e6;
  out.after.duration_s = (end_us - reorg_end_us) / 1e6;
  const bool keep_samples = std::getenv("BRAHMA_SWARM_KEEP") != nullptr;
  if (keep_samples) {
    std::FILE* mf = std::fopen(("swarm_" + tag + ".marks").c_str(), "w");
    if (mf != nullptr) {
      std::fprintf(mf, "reorg_start_us %lld\nreorg_end_us %lld\n",
                   static_cast<long long>(reorg_start_us),
                   static_cast<long long>(reorg_end_us));
      std::fclose(mf);
    }
  }
  for (const std::string& f : sample_files) {
    LoadSamples(f, before_lo, reorg_start_us, &out.before);
    LoadSamples(f, reorg_start_us, reorg_end_us, &out.during);
    LoadSamples(f, reorg_end_us, end_us, &out.after);
    if (!keep_samples) std::remove(f.c_str());
  }
  if (!keep_samples) std::remove(victim_file.c_str());
  return out;
}

void AddPhase(JsonBenchWriter* json, const char* name,
              const PhaseStats& p) {
  std::string prefix(name);
  json->Add(prefix + "_tps", p.tps());
  json->Add(prefix + "_p50_ms", p.latency_ms.Percentile(0.50));
  json->Add(prefix + "_p99_ms", p.latency_ms.Percentile(0.99));
  json->Add(prefix + "_p999_ms", p.latency_ms.Percentile(0.999));
  json->Add(prefix + "_txns", static_cast<double>(p.latency_ms.count()));
}

void AddRow(JsonBenchWriter* json, const SwarmConfig& cfg, int throttled,
            double slo_ms, const RoundResult& r) {
  json->BeginRow();
  json->Add("throttle", throttled);
  json->Add("connections", cfg.connections);
  json->Add("procs", cfg.procs);
  json->Add("server_workers", cfg.server_workers);
  json->Add("ira_workers", cfg.ira_workers);
  json->Add("slo_ms", slo_ms);
  AddPhase(json, "before", r.before);
  AddPhase(json, "during", r.during);
  AddPhase(json, "after", r.after);
  json->Add("reorg_ms", r.reorg_ms);
  json->Add("reorg_ok", r.reorg_ok ? 1 : 0);
  json->Add("objects_migrated", static_cast<double>(r.objects_migrated));
  json->Add("throttle_sheds", static_cast<double>(r.sheds));
  json->Add("throttle_boosts", static_cast<double>(r.boosts));
  json->Add("throttle_final_cap", r.final_cap);
  json->Add("sessions_accepted", static_cast<double>(r.sessions_accepted));
  json->Add("requests_served", static_cast<double>(r.requests_served));
  json->Add("sessions_dropped", static_cast<double>(r.sessions_dropped));
  json->Add("victim_killed", r.victim_killed ? 1 : 0);
  json->Add("server_alive_after", r.server_alive_after ? 1 : 0);
}

void Run() {
  SwarmConfig cfg;
  WorkloadParams base;
  base.num_partitions = 6;
  // The paper's NUMOBJS (4080). Duration comes from cfg.reorg_passes
  // ping-ponging this partition, not from inflating it: at 5x the size
  // under this connection load the analysis/migration phase degrades
  // pathologically on one CPU (see ROADMAP follow-on).
  base.objects_per_partition = 85 * 48;
  if (SmokeMode()) {
    cfg.connections = 64;
    cfg.procs = 2;
    cfg.before_s = 1.0;
    cfg.after_s = 1.0;
    cfg.settle_s = 0.5;
    cfg.reorg_passes = 2;
    base.num_partitions = 3;
    base.objects_per_partition = 85 * 4;
  } else if (FullMode()) {
    cfg.connections = 2000;
    cfg.procs = 8;
    cfg.before_s = 4.0;
    cfg.after_s = 4.0;
    cfg.reorg_passes = 8;
    cfg.think_ms = 100.0;  // same offered-load ratio at twice the swarm
  }

  std::printf("# Net server swarm — user tail latency before/during/after "
              "IRA, throttle off vs on (%u connections, %u procs)\n",
              cfg.connections, cfg.procs);
  PrintSeriesHeader("throttle",
                    {"before_p99_ms", "during_p99_ms", "after_p99_ms",
                     "during_tps", "reorg_ms", "sheds"});
  JsonBenchWriter json("net_server");

  // Round 1: unthrottled — expose the during-reorg damage and calibrate
  // the SLO between the quiet and damaged p99s, so it is a target the
  // unthrottled run provably exceeds and the quiet system satisfies.
  RoundResult off = RunRound(cfg, base, /*slo_ms=*/0, "off");
  const double quiet_p99 = off.before.latency_ms.Percentile(0.99);
  const double damaged_p99 = off.during.latency_ms.Percentile(0.99);
  double slo_ms = std::max(quiet_p99 * 1.3,
                           quiet_p99 + (damaged_p99 - quiet_p99) * 0.6);
  AddRow(&json, cfg, 0, slo_ms, off);
  PrintSeriesRow(0, {quiet_p99, damaged_p99,
                     off.after.latency_ms.Percentile(0.99),
                     off.during.tps(), off.reorg_ms, 0});

  // Round 2: same swarm, same reorg, throttle on with the calibrated
  // SLO feeding IraOptions::throttle.
  RoundResult on = RunRound(cfg, base, slo_ms, "on");
  AddRow(&json, cfg, 1, slo_ms, on);
  PrintSeriesRow(1, {on.before.latency_ms.Percentile(0.99),
                     on.during.latency_ms.Percentile(0.99),
                     on.after.latency_ms.Percentile(0.99),
                     on.during.tps(), on.reorg_ms,
                     static_cast<double>(on.sheds)});

  std::printf("# slo %.2f ms: unthrottled during-p99 %.2f ms, throttled "
              "%.2f ms (sheds %llu, final cap %u)\n",
              slo_ms, damaged_p99,
              on.during.latency_ms.Percentile(0.99),
              static_cast<unsigned long long>(on.sheds), on.final_cap);

  if (!off.server_alive_after || !on.server_alive_after) {
    std::fprintf(stderr, "server did not survive the swarm/kill -9\n");
    NoteFailure();
  }
  if (!json.WriteFile("BENCH_net_server.json")) {
    std::fprintf(stderr, "failed to write BENCH_net_server.json\n");
    NoteFailure();
  }
}

}  // namespace
}  // namespace bench
}  // namespace brahma

int main() {
  brahma::bench::Run();
  // Nonzero when the reorg failed, a child crashed, the server died, or
  // the JSON artifact could not be written: CI must fail the step.
  return brahma::bench::ExitCode();
}
