#!/usr/bin/env python3
"""Turn BENCH_*.json rows into ASCII and SVG figures.

The benchmark binaries emit ``{"bench": name, "rows": [{key: value}]}``
(see bench/harness.h JsonBenchWriter). This script renders each numeric
column as a line chart against a sweep key (--x, auto-detected from the
common sweep columns when omitted), matching the shapes of the paper's
Figures 6-11 (throughput / response time vs MPL, partition size, update
probability) without any plotting dependency: ASCII charts go to stdout
(and .txt files), --svg additionally writes one standalone SVG per
figure.

Usage:
  plot_bench.py [--out-dir DIR] [--svg] [--x KEY] [--y KEY[,KEY...]] file...

Exits nonzero when no input file yields any row (so CI catches an empty
or malformed benchmark artifact).
"""

import argparse
import json
import os
import sys

# Sweep keys the benchmarks use, in preference order, for --x detection.
X_KEY_CANDIDATES = ["mpl", "workers", "group_size", "threads",
                    "objects_per_partition", "update_prob"]

ASCII_W = 60
ASCII_H = 20


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench", os.path.basename(path))
    rows = [r for r in doc.get("rows", []) if isinstance(r, dict)]
    return name, rows


def numeric_keys(rows):
    keys = []
    for row in rows:
        for k, v in row.items():
            if isinstance(v, (int, float)) and v is not None and k not in keys:
                keys.append(k)
    return keys


def pick_x_key(rows, requested):
    keys = numeric_keys(rows)
    if requested:
        if requested not in keys:
            raise SystemExit(f"--x key {requested!r} not in rows "
                             f"(have: {', '.join(keys)})")
        return requested
    for cand in X_KEY_CANDIDATES:
        if cand in keys:
            return cand
    # Fall back to the first column (often the sweep variable anyway).
    return keys[0] if keys else None


def series_for(rows, x_key, y_key):
    pts = []
    for row in rows:
        x, y = row.get(x_key), row.get(y_key)
        if isinstance(x, (int, float)) and isinstance(y, (int, float)):
            pts.append((float(x), float(y)))
    pts.sort()
    return pts


def fmt(v):
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


def ascii_chart(title, x_key, y_key, pts):
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * ASCII_W for _ in range(ASCII_H)]

    def cell(x, y):
        cx = round((x - x_lo) / (x_hi - x_lo) * (ASCII_W - 1))
        cy = round((y - y_lo) / (y_hi - y_lo) * (ASCII_H - 1))
        return (ASCII_H - 1) - cy, cx

    # Connect consecutive points with interpolated steps so the line
    # shape reads even with few sweep points.
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        steps = max(abs(cell(x1, y1)[1] - cell(x0, y0)[1]), 1)
        for i in range(steps + 1):
            t = i / steps
            r, c = cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
            if grid[r][c] == " ":
                grid[r][c] = "."
    for x, y in pts:
        r, c = cell(x, y)
        grid[r][c] = "*"

    lines = [f"{title}: {y_key} vs {x_key}"]
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = fmt(y_hi)
        elif i == ASCII_H - 1:
            label = fmt(y_lo)
        lines.append(f"{label:>10} |{''.join(row)}|")
    lines.append(" " * 11 + "+" + "-" * ASCII_W + "+")
    lines.append(f"{'':11} {fmt(x_lo)}{fmt(x_hi):>{ASCII_W - len(fmt(x_lo))}}")
    return "\n".join(lines) + "\n"


def svg_chart(title, x_key, y_key, pts):
    w, h, margin = 480, 300, 50
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def px(x):
        return margin + (x - x_lo) / (x_hi - x_lo) * (w - 2 * margin)

    def py(y):
        return h - margin - (y - y_lo) / (y_hi - y_lo) * (h - 2 * margin)

    poly = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in pts)
    dots = "".join(
        f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" fill="#1f6feb"/>'
        for x, y in pts)
    return f"""<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{w / 2}" y="18" text-anchor="middle" font-family="sans-serif"
 font-size="13">{title}: {y_key} vs {x_key}</text>
<line x1="{margin}" y1="{h - margin}" x2="{w - margin}" y2="{h - margin}"
 stroke="black"/>
<line x1="{margin}" y1="{margin}" x2="{margin}" y2="{h - margin}"
 stroke="black"/>
<text x="{margin}" y="{h - margin + 16}" font-family="sans-serif"
 font-size="11">{fmt(x_lo)}</text>
<text x="{w - margin}" y="{h - margin + 16}" text-anchor="end"
 font-family="sans-serif" font-size="11">{fmt(x_hi)}</text>
<text x="{margin - 4}" y="{h - margin}" text-anchor="end"
 font-family="sans-serif" font-size="11">{fmt(y_lo)}</text>
<text x="{margin - 4}" y="{margin + 4}" text-anchor="end"
 font-family="sans-serif" font-size="11">{fmt(y_hi)}</text>
<polyline points="{poly}" fill="none" stroke="#1f6feb" stroke-width="1.5"/>
{dots}
</svg>
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="BENCH_*.json inputs")
    ap.add_argument("--out-dir", default=None,
                    help="write .txt (and .svg) figures here")
    ap.add_argument("--svg", action="store_true", help="also emit SVG files")
    ap.add_argument("--x", default=None, help="sweep key (auto-detected)")
    ap.add_argument("--y", default=None,
                    help="comma-separated y keys (default: every numeric "
                         "column except the x key)")
    args = ap.parse_args()

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)

    figures = 0
    for path in args.files:
        try:
            name, rows = load_rows(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable ({e})", file=sys.stderr)
            continue
        if not rows:
            print(f"{path}: no rows", file=sys.stderr)
            continue
        x_key = pick_x_key(rows, args.x)
        if x_key is None:
            print(f"{path}: no numeric columns", file=sys.stderr)
            continue
        if args.y:
            y_keys = [k.strip() for k in args.y.split(",") if k.strip()]
        else:
            y_keys = [k for k in numeric_keys(rows) if k != x_key]
        for y_key in y_keys:
            pts = series_for(rows, x_key, y_key)
            if len(pts) < 2:
                continue
            chart = ascii_chart(name, x_key, y_key, pts)
            print(chart)
            if args.out_dir:
                base = f"{name}_{y_key}_vs_{x_key}".replace("/", "_")
                with open(os.path.join(args.out_dir, base + ".txt"), "w") as f:
                    f.write(chart)
                if args.svg:
                    with open(os.path.join(args.out_dir, base + ".svg"),
                              "w") as f:
                        f.write(svg_chart(name, x_key, y_key, pts))
            figures += 1

    if figures == 0:
        print("no figures produced (empty or malformed inputs)",
              file=sys.stderr)
        return 1
    print(f"{figures} figure(s) produced", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
