#!/usr/bin/env python3
"""Turn BENCH_*.json rows into ASCII and SVG figures.

The benchmark binaries emit ``{"bench": name, "rows": [{key: value}]}``
(see bench/harness.h JsonBenchWriter). This script renders each numeric
column as a line chart against a sweep key (--x, auto-detected from the
common sweep columns when omitted), matching the shapes of the paper's
Figures 6-11 (throughput / response time vs MPL, partition size, update
probability) without any plotting dependency: ASCII charts go to stdout
(and .txt files), --svg additionally writes one standalone SVG per
figure.

Usage:
  plot_bench.py [--out-dir DIR] [--svg] [--x KEY] [--y KEY[,KEY...]]
                [--series KEY] file...

A/B benchmarks (e.g. group commit on/off) emit rows tagged with a mode
column; --series (auto-detected from the common mode columns) splits the
rows into one line per mode value, drawn on the same chart with distinct
markers (ASCII) / colors plus a legend (SVG).

Exits nonzero when no input file yields any row (so CI catches an empty
or malformed benchmark artifact).
"""

import argparse
import json
import os
import sys

# Sweep keys the benchmarks use, in preference order, for --x detection.
X_KEY_CANDIDATES = ["mpl", "workers", "group_size", "threads",
                    "objects_per_partition", "update_prob", "phase",
                    "after"]

# Mode/ablation keys, in preference order, for --series detection.
SERIES_KEY_CANDIDATES = ["group_commit", "latchfree", "durability", "mode",
                         "mode_disk", "scenario", "throttle"]

ASCII_MARKERS = "*o+x#@"
SVG_COLORS = ["#1f6feb", "#d1242f", "#1a7f37", "#8250df", "#bf8700",
              "#57606a"]

ASCII_W = 60
ASCII_H = 20


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench", os.path.basename(path))
    rows = [r for r in doc.get("rows", []) if isinstance(r, dict)]
    return name, rows


# Timeline phases some benches (net_server) fold into one row as
# before_*/during_*/after_* columns.
PHASES = ["before", "during", "after"]


def explode_phases(rows):
    """Reshape phase-prefixed columns into one row per phase.

    A row like {throttle: 1, before_p99_ms: 66, during_p99_ms: 108, ...}
    summarizes a timeline; as a single point it can't be charted. Explode
    it into three rows tagged with a numeric ``phase`` column (0=before,
    1=during, 2=after) carrying the unprefixed metrics, so each original
    row becomes a 3-point line (phase on the x axis, e.g. one line per
    throttle mode)."""
    def phase_of(key):
        for i, p in enumerate(PHASES):
            if key.startswith(p + "_"):
                return i, key[len(p) + 1:]
        return None, key

    if not any(phase_of(k)[0] is not None for r in rows for k in r):
        return rows
    out = []
    for row in rows:
        base = {k: v for k, v in row.items() if phase_of(k)[0] is None}
        split = [dict(base) for _ in PHASES]
        hit = [False] * len(PHASES)
        for k, v in row.items():
            i, stripped = phase_of(k)
            if i is not None:
                split[i][stripped] = v
                hit[i] = True
        for i, sub in enumerate(split):
            if hit[i]:
                sub["phase"] = i
                out.append(sub)
    return out


def numeric_keys(rows):
    keys = []
    for row in rows:
        for k, v in row.items():
            if isinstance(v, (int, float)) and v is not None and k not in keys:
                keys.append(k)
    return keys


def distinct_values(rows, key):
    return sorted({row[key] for row in rows
                   if isinstance(row.get(key), (int, float))})


def pick_x_key(rows, requested, series_key=None):
    keys = numeric_keys(rows)
    if requested:
        if requested not in keys:
            raise SystemExit(f"--x key {requested!r} not in rows "
                             f"(have: {', '.join(keys)})")
        return requested
    # Prefer a candidate that actually sweeps (>= 2 distinct values): an
    # A/B bench may carry a constant mpl column alongside a workers sweep.
    for cand in X_KEY_CANDIDATES:
        if cand in keys and cand != series_key and \
                len(distinct_values(rows, cand)) >= 2:
            return cand
    for cand in X_KEY_CANDIDATES:
        if cand in keys and cand != series_key:
            return cand
    # Fall back to the first column (often the sweep variable anyway).
    return keys[0] if keys else None


def pick_series_key(rows, requested):
    keys = numeric_keys(rows)
    if requested:
        if requested not in keys:
            raise SystemExit(f"--series key {requested!r} not in rows "
                             f"(have: {', '.join(keys)})")
        return requested
    for cand in SERIES_KEY_CANDIDATES:
        if cand in keys and len(distinct_values(rows, cand)) >= 2:
            return cand
    return None


def series_for(rows, x_key, y_key):
    pts = []
    for row in rows:
        x, y = row.get(x_key), row.get(y_key)
        if isinstance(x, (int, float)) and isinstance(y, (int, float)):
            pts.append((float(x), float(y)))
    pts.sort()
    return pts


def split_series(rows, series_key):
    """[(label, rows)] — one entry per series value, or one unlabeled."""
    if series_key is None:
        return [(None, rows)]
    out = []
    for val in distinct_values(rows, series_key):
        subset = [r for r in rows if r.get(series_key) == val]
        out.append((f"{series_key}={fmt(float(val))}", subset))
    return out


def fmt(v):
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


def ascii_chart(title, x_key, y_key, series):
    """series: [(label_or_None, pts)] — each drawn with its own marker."""
    all_pts = [p for _, pts in series for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * ASCII_W for _ in range(ASCII_H)]

    def cell(x, y):
        cx = round((x - x_lo) / (x_hi - x_lo) * (ASCII_W - 1))
        cy = round((y - y_lo) / (y_hi - y_lo) * (ASCII_H - 1))
        return (ASCII_H - 1) - cy, cx

    for si, (_, pts) in enumerate(series):
        # Connect consecutive points with interpolated steps so the line
        # shape reads even with few sweep points.
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(abs(cell(x1, y1)[1] - cell(x0, y0)[1]), 1)
            for i in range(steps + 1):
                t = i / steps
                r, c = cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        marker = ASCII_MARKERS[si % len(ASCII_MARKERS)]
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = marker

    lines = [f"{title}: {y_key} vs {x_key}"]
    legend = [f"{ASCII_MARKERS[i % len(ASCII_MARKERS)]} {label}"
              for i, (label, _) in enumerate(series) if label]
    if legend:
        lines.append("  ".join(legend))
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = fmt(y_hi)
        elif i == ASCII_H - 1:
            label = fmt(y_lo)
        lines.append(f"{label:>10} |{''.join(row)}|")
    lines.append(" " * 11 + "+" + "-" * ASCII_W + "+")
    lines.append(f"{'':11} {fmt(x_lo)}{fmt(x_hi):>{ASCII_W - len(fmt(x_lo))}}")
    return "\n".join(lines) + "\n"


def svg_chart(title, x_key, y_key, series):
    """series: [(label_or_None, pts)] — one colored line per entry."""
    w, h, margin = 480, 300, 50
    all_pts = [p for _, pts in series for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def px(x):
        return margin + (x - x_lo) / (x_hi - x_lo) * (w - 2 * margin)

    def py(y):
        return h - margin - (y - y_lo) / (y_hi - y_lo) * (h - 2 * margin)

    body = []
    for si, (label, pts) in enumerate(series):
        color = SVG_COLORS[si % len(SVG_COLORS)]
        poly = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in pts)
        body.append(f'<polyline points="{poly}" fill="none" '
                    f'stroke="{color}" stroke-width="1.5"/>')
        for x, y in pts:
            body.append(f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                        f'fill="{color}"/>')
        if label:
            ly = margin + 6 + 14 * si
            body.append(f'<line x1="{w - margin - 90}" y1="{ly}" '
                        f'x2="{w - margin - 70}" y2="{ly}" '
                        f'stroke="{color}" stroke-width="2"/>')
            body.append(f'<text x="{w - margin - 64}" y="{ly + 4}" '
                        f'font-family="sans-serif" font-size="10">'
                        f'{label}</text>')
    return f"""<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{w / 2}" y="18" text-anchor="middle" font-family="sans-serif"
 font-size="13">{title}: {y_key} vs {x_key}</text>
<line x1="{margin}" y1="{h - margin}" x2="{w - margin}" y2="{h - margin}"
 stroke="black"/>
<line x1="{margin}" y1="{margin}" x2="{margin}" y2="{h - margin}"
 stroke="black"/>
<text x="{margin}" y="{h - margin + 16}" font-family="sans-serif"
 font-size="11">{fmt(x_lo)}</text>
<text x="{w - margin}" y="{h - margin + 16}" text-anchor="end"
 font-family="sans-serif" font-size="11">{fmt(x_hi)}</text>
<text x="{margin - 4}" y="{h - margin}" text-anchor="end"
 font-family="sans-serif" font-size="11">{fmt(y_lo)}</text>
<text x="{margin - 4}" y="{margin + 4}" text-anchor="end"
 font-family="sans-serif" font-size="11">{fmt(y_hi)}</text>
{os.linesep.join(body)}
</svg>
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="BENCH_*.json inputs")
    ap.add_argument("--out-dir", default=None,
                    help="write .txt (and .svg) figures here")
    ap.add_argument("--svg", action="store_true", help="also emit SVG files")
    ap.add_argument("--x", default=None, help="sweep key (auto-detected)")
    ap.add_argument("--y", default=None,
                    help="comma-separated y keys (default: every numeric "
                         "column except the x key)")
    ap.add_argument("--series", default=None,
                    help="mode key splitting rows into one line each "
                         "(auto-detected from "
                         f"{', '.join(SERIES_KEY_CANDIDATES)})")
    args = ap.parse_args()

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)

    figures = 0
    for path in args.files:
        try:
            name, rows = load_rows(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable ({e})", file=sys.stderr)
            continue
        if not rows:
            print(f"{path}: no rows", file=sys.stderr)
            continue
        rows = explode_phases(rows)
        series_key = pick_series_key(rows, args.series)
        x_key = pick_x_key(rows, args.x, series_key)
        if x_key is None:
            print(f"{path}: no numeric columns", file=sys.stderr)
            continue
        if args.y:
            y_keys = [k.strip() for k in args.y.split(",") if k.strip()]
        else:
            y_keys = [k for k in numeric_keys(rows)
                      if k != x_key and k != series_key]
        groups = split_series(rows, series_key)
        for y_key in y_keys:
            series = []
            for label, subset in groups:
                pts = series_for(subset, x_key, y_key)
                if len(pts) >= 2:
                    series.append((label, pts))
            if not series:
                continue
            chart = ascii_chart(name, x_key, y_key, series)
            print(chart)
            if args.out_dir:
                base = f"{name}_{y_key}_vs_{x_key}".replace("/", "_")
                with open(os.path.join(args.out_dir, base + ".txt"), "w") as f:
                    f.write(chart)
                if args.svg:
                    with open(os.path.join(args.out_dir, base + ".svg"),
                              "w") as f:
                        f.write(svg_chart(name, x_key, y_key, series))
            figures += 1

    if figures == 0:
        print("no figures produced (empty or malformed inputs)",
              file=sys.stderr)
        return 1
    print(f"{figures} figure(s) produced", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
